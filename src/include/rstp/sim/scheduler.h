// Step schedulers: the Σ(A_t, A_r) timing nondeterminism.
//
// Σ(A_t, A_r) (paper §4) admits any execution in which the gap between a
// process's consecutive local events lies in [c1, c2]. A StepScheduler is
// one resolution of that nondeterminism: it emits the first step offset and
// each subsequent gap. The simulator validates every returned value against
// the TimingParams, so a buggy or malicious scheduler is caught as a
// ModelError instead of silently producing executions outside good(A).
//
// Provided schedulers:
//   * FixedRateScheduler(g)  — steps every g (g = c1: the proofs' "fast"
//     executions; g = c2: the worst-case executions effort is measured on).
//   * SeededRandomScheduler  — gap uniform in [c1, c2] per step.
//   * SawtoothScheduler      — alternates c1, c2 (maximum jitter).
//   * DriftScheduler         — long runs of c1 then long runs of c2
//     (clock-drift-style variation between the extremes).
//   * DriftingSpecScheduler  — step gap follows a core::DriftSpec segment
//     schedule (scripted mid-run breakpoints), clamped into [c1, c2].
#pragma once

#include <cstdint>
#include <memory>

#include "rstp/common/rng.h"
#include "rstp/common/time.h"
#include "rstp/core/drift.h"
#include "rstp/core/params.h"

namespace rstp::sim {

class StepScheduler {
 public:
  virtual ~StepScheduler() = default;

  /// Offset of the process's first local step from time 0. Must be in
  /// [0, c2] (the process must take its first step within c2).
  [[nodiscard]] virtual Duration first_offset() = 0;

  /// Gap between step `step_index - 1` and step `step_index` (1-based).
  /// Must be in [c1, c2].
  [[nodiscard]] virtual Duration next_gap(std::uint64_t step_index) = 0;
};

class FixedRateScheduler final : public StepScheduler {
 public:
  explicit FixedRateScheduler(Duration gap, Duration first = Duration{0});
  [[nodiscard]] Duration first_offset() override { return first_; }
  [[nodiscard]] Duration next_gap(std::uint64_t step_index) override;

 private:
  Duration gap_;
  Duration first_;
};

class SeededRandomScheduler final : public StepScheduler {
 public:
  SeededRandomScheduler(Rng rng, core::TimingParams params);
  [[nodiscard]] Duration first_offset() override;
  [[nodiscard]] Duration next_gap(std::uint64_t step_index) override;

 private:
  Rng rng_;
  core::TimingParams params_;
};

class SawtoothScheduler final : public StepScheduler {
 public:
  explicit SawtoothScheduler(core::TimingParams params);
  [[nodiscard]] Duration first_offset() override { return Duration{0}; }
  [[nodiscard]] Duration next_gap(std::uint64_t step_index) override;

 private:
  core::TimingParams params_;
};

class DriftScheduler final : public StepScheduler {
 public:
  /// Alternates runs of `run_length` fast (c1) steps and `run_length` slow
  /// (c2) steps.
  DriftScheduler(core::TimingParams params, std::uint64_t run_length);
  [[nodiscard]] Duration first_offset() override { return Duration{0}; }
  [[nodiscard]] Duration next_gap(std::uint64_t step_index) override;

 private:
  core::TimingParams params_;
  std::uint64_t run_length_;
};

class DriftingSpecScheduler final : public StepScheduler {
 public:
  /// Follows `spec`: the gap after an instant t is the active segment's
  /// c2_eff (or the envelope c2 when the segment leaves it unset), clamped
  /// into [c1, c2] so every emitted gap stays in-model for the envelope. The
  /// StepScheduler interface carries no simulation clock, so the scheduler
  /// keys segments to its own cumulative step clock — exactly this process's
  /// timeline. Requires a non-empty, valid spec.
  DriftingSpecScheduler(core::DriftSpec spec, core::TimingParams params);
  [[nodiscard]] Duration first_offset() override { return Duration{0}; }
  [[nodiscard]] Duration next_gap(std::uint64_t step_index) override;

 private:
  core::DriftSpec spec_;
  core::TimingParams params_;
  Time clock_{};  ///< instant of this process's most recent step
};

/// Factories matching the policy factories in channel/policies.h.
[[nodiscard]] std::unique_ptr<StepScheduler> make_fixed_rate(Duration gap,
                                                             Duration first = Duration{0});
[[nodiscard]] std::unique_ptr<StepScheduler> make_seeded_random(std::uint64_t seed,
                                                                core::TimingParams params);
[[nodiscard]] std::unique_ptr<StepScheduler> make_sawtooth(core::TimingParams params);
[[nodiscard]] std::unique_ptr<StepScheduler> make_drift(core::TimingParams params,
                                                        std::uint64_t run_length);
[[nodiscard]] std::unique_ptr<StepScheduler> make_drifting_scheduler(core::DriftSpec spec,
                                                                     core::TimingParams params);

}  // namespace rstp::sim
