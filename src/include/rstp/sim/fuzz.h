// Coverage-guided schedule fuzzer with deterministic repro artifacts.
//
// The property tests *sample* good(A); the fuzzer *hunts* in it (and, with
// fault injection on, outside it). A FuzzCase is a complete genome for one
// run — protocol, timing params, every seed, the fault plan — so a case is a
// pure value: running it twice, on any machine, yields bit-identical traces,
// verdicts, and coverage. That purity is what makes the three artifacts work:
//
//   * coverage — each applied event is fingerprinted (actor, action shape,
//     protocol counters, output length; never wall-clock or raw time, which
//     would make every case "new"). A case that reaches a fingerprint no
//     earlier case reached joins the corpus and becomes mutation fodder.
//   * determinism across --jobs — evaluation is generational: every round's
//     batch is fully determined (seed, round, slot, corpus snapshot) before
//     any parallel work starts, workers write disjoint slots, and the fold
//     back into corpus/failures is serial in slot order. The thread count
//     changes wall-clock only.
//   * repro files — a failure serializes its (minimized) FuzzCase plus the
//     expected verdict; `rstp replay FILE` re-runs it and compares every
//     recorded field. See docs/TESTING.md for the format.
//
// Verdicts are fault-aware (core::verify_trace_with_faults): a run is a
// *failure* only on an unexcused violation, or on a protocol exception with
// a clean fault log (a crash after an injected fault is fail-stop behavior,
// not a bug — several protocols deliberately RSTP_CHECK model assumptions).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "rstp/core/verify.h"
#include "rstp/fault/fault.h"
#include "rstp/obs/run_metrics.h"
#include "rstp/protocols/factory.h"

namespace rstp::obs::trace {
class ModelRecorder;
}  // namespace rstp::obs::trace

namespace rstp::sim {

/// A complete, serializable genome for one fuzz run. Every field feeds the
/// execution; none is advisory — equality of FuzzCases implies bit-equality
/// of everything run_fuzz_case derives from them.
struct FuzzCase {
  protocols::ProtocolKind protocol = protocols::ProtocolKind::Beta;
  core::TimingParams params = core::TimingParams::make(1, 2, 6);
  std::uint32_t k = 4;
  std::uint32_t input_bits = 32;
  std::uint64_t input_seed = 1;
  std::uint64_t sched_seed_t = 1;  ///< transmitter SeededRandomScheduler
  std::uint64_t sched_seed_r = 2;  ///< receiver SeededRandomScheduler
  std::uint64_t delay_seed = 3;    ///< UniformRandomPolicy over [0, d]
  /// Mutant knobs (0 = derive from params): forwarded to ProtocolConfig's
  /// block/wait overrides. wait_override below ⌈d/c1⌉ breaks β's block
  /// separation — the checked-in golden failure uses exactly that.
  std::uint32_t block_override = 0;
  std::uint32_t wait_override = 0;
  std::uint64_t max_events = 200'000;
  bool faults_enabled = false;
  std::uint64_t fault_seed = 0;
  fault::FaultRates rates{};
  std::vector<fault::PinnedFault> pins;

  friend bool operator==(const FuzzCase&, const FuzzCase&) = default;
};

/// Writes/parses the line-oriented `rstp-fuzz-case-v1` form (one `key
/// values...` line per field, closed by `end`; `#` starts a comment).
/// parse throws rstp::ModelError on malformed input.
void write_fuzz_case(std::ostream& os, const FuzzCase& c);
[[nodiscard]] FuzzCase parse_fuzz_case(std::istream& is);

/// Everything one case execution produced. All fields are deterministic
/// functions of the FuzzCase.
struct FuzzCaseResult {
  bool invalid = false;   ///< genome violates a protocol's config contract; skipped
  bool crashed = false;   ///< the run threw (protocol RSTP_CHECK, event-cap logic)
  bool failed = false;    ///< unexcused violation, or a crash with no prior fault
  std::string failure;    ///< summary of why (empty when !failed && !crashed)
  std::vector<core::Violation> unexcused;
  std::size_t excused = 0;
  std::size_t fault_events = 0;
  bool quiescent = false;
  std::uint64_t output_hash = 0;    ///< FNV-1a over Y
  std::uint64_t coverage_hash = 0;  ///< order-independent fold of fingerprints
  std::vector<std::uint64_t> fingerprints;  ///< distinct, sorted
  std::uint64_t event_count = 0;
  /// Effort bookkeeping (0 for invalid/crashed runs, or when the transmitter
  /// never sent): t(last-send) in ticks, t(last-send)/|X| in ticks per bit,
  /// and the model time of the last event. These feed the per-case
  /// RunMetricsRecord stream so effort regressions trip the same
  /// `rstp report --fail-on` gate as campaign perf regressions.
  std::int64_t last_send = 0;
  double effort = 0;
  std::int64_t end_time = 0;
  obs::RunMetrics metrics;  ///< empty for invalid/crashed runs
};

/// Executes one genome: seeded schedulers, uniform-random delays in [0, d],
/// optional SeededFaultInjector, full trace, fault-aware verification.
/// `tracer` (obs/trace.h; non-owning) records the causal span timeline of the
/// run; a pure observer, it cannot change the result.
[[nodiscard]] FuzzCaseResult run_fuzz_case(const FuzzCase& c,
                                           obs::trace::ModelRecorder* tracer = nullptr);

/// A display-only snapshot of the hunt after one generation's serial fold,
/// published through FuzzSpec::on_generation. Emitted only from the fold (and
/// once more after minimization, with final_snapshot=true), never from the
/// parallel workers — so attaching a consumer cannot change the FuzzResult,
/// which stays bitwise deterministic across `jobs` with the hook on or off.
struct FuzzGenerationSnapshot {
  std::uint64_t generation = 0;  ///< 0-based fold index
  std::uint64_t executed = 0;    ///< cases run so far
  std::uint64_t budget = 0;
  std::size_t corpus = 0;
  std::size_t coverage = 0;       ///< distinct fingerprints so far
  std::size_t coverage_gain = 0;  ///< fingerprints first reached this generation
  std::size_t crashes = 0;        ///< crashed cases so far (fail-stop or not)
  std::size_t failures = 0;       ///< tracked failures so far
  /// Mutation-count draw width the *next* generation will breed with:
  /// base 3, +1 per consecutive zero-gain generation (capped at +5), reset
  /// to base by any gain. Deterministic fold-state, identical across jobs.
  std::uint64_t mutation_rate = 3;
  double elapsed_seconds = 0;     ///< wall clock; observational only
  bool final_snapshot = false;
};

struct FuzzSpec {
  protocols::ProtocolKind protocol = protocols::ProtocolKind::Beta;
  std::uint32_t k = 4;
  std::uint64_t seed = 1;
  /// Total case executions (initial seeds + mutations). The run is
  /// deterministic given (spec, corpus_seeds) for any `jobs`.
  std::uint64_t budget = 256;
  unsigned jobs = 1;  ///< 0 = hardware concurrency
  std::uint32_t max_input_bits = 48;
  std::uint64_t max_events = 200'000;
  bool faults_enabled = false;
  /// Applied to every generated case (see FuzzCase): the mutant knobs.
  std::uint32_t block_override = 0;
  std::uint32_t wait_override = 0;
  /// Stop folding new generations once a failure is in hand (the budget is
  /// an upper bound either way).
  bool stop_on_failure = true;
  /// Wall-clock cutoff in milliseconds (0 = none). Checked at generation
  /// boundaries only — using it trades the cross-run determinism guarantee
  /// for bounded latency; iteration budgets keep it.
  std::uint64_t time_budget_ms = 0;
  /// Extra starting cases (e.g. a checked-in corpus). Run before mutations.
  std::vector<FuzzCase> corpus_seeds;
  /// Optional per-generation progress hook (see FuzzGenerationSnapshot).
  /// Called serially between generations; must not mutate the spec.
  std::function<void(const FuzzGenerationSnapshot&)> on_generation;
};

struct FuzzFailure {
  FuzzCase original;       ///< as discovered
  FuzzCase minimized;      ///< after deterministic shrinking (still failing)
  FuzzCaseResult result;   ///< verdict of `minimized`
};

struct FuzzResult {
  std::uint64_t executed = 0;        ///< cases run (excluding minimization reruns)
  std::size_t coverage = 0;          ///< distinct fingerprints reached
  std::uint64_t coverage_hash = 0;   ///< order-independent fold of all of them
  std::vector<FuzzCase> corpus;            ///< cases that first reached new coverage
  std::vector<FuzzCaseResult> corpus_results;  ///< parallel to `corpus`
  std::vector<FuzzFailure> failures;

  [[nodiscard]] bool ok() const { return failures.empty(); }
};

/// Runs the campaign. Deterministic for fixed (spec, corpus_seeds) across
/// runs and `jobs` values, unless time_budget_ms cuts it short.
[[nodiscard]] FuzzResult run_fuzz(const FuzzSpec& spec);

/// A parsed `rstp-fuzz-repro-v1` file: the genome plus the recorded verdict.
struct FuzzRepro {
  FuzzCase fuzz_case;
  bool failed = false;
  bool crashed = false;
  bool quiescent = false;
  std::size_t unexcused = 0;
  std::size_t fault_events = 0;
  std::vector<std::string> kinds;  ///< unexcused ViolationKind names, in order
  std::uint64_t output_hash = 0;
  std::uint64_t coverage_hash = 0;
  std::uint64_t event_count = 0;
};

/// Serializes case + verdict as a self-contained repro document.
void write_fuzz_repro(std::ostream& os, const FuzzCase& c, const FuzzCaseResult& result);
/// Throws rstp::ModelError on malformed input.
[[nodiscard]] FuzzRepro parse_fuzz_repro(std::istream& is);

/// Re-executes a repro and compares every recorded field bitwise.
struct ReplayOutcome {
  FuzzCaseResult result;
  bool reproduced = false;
  std::string mismatch;  ///< first differing field, "got vs expected"
};
[[nodiscard]] ReplayOutcome replay_fuzz_repro(const FuzzRepro& repro,
                                              obs::trace::ModelRecorder* tracer = nullptr);

/// The verdict fields of `result` as a FuzzRepro (shared by write/replay).
[[nodiscard]] FuzzRepro make_fuzz_repro(const FuzzCase& c, const FuzzCaseResult& result);

}  // namespace rstp::sim
