// Shared machinery for the repo's generational search engines — the
// coverage-guided fuzzer (sim/fuzz.h) and the adversary synthesizer
// (sim/adversary.h). Both hunt the same way: plan a batch deterministically,
// evaluate its slots in parallel, fold the results serially, repeat. What
// they *score* differs (crash/violation novelty vs. protocol effort), so the
// reusable parts live here:
//
//   * FNV-1a mixing and the event fingerprint: a 64-bit digest of "where the
//     protocol is" after one applied event. It deliberately excludes raw
//     times and sequence numbers (every case would be all-new coverage) and
//     includes the action shape, the protocol automata's own counters, and
//     the output length — state the paper's proofs quantify over.
//   * parallel_for_slots: the campaign engine's work-stealing shape, local to
//     one generation. Workers claim indices from an atomic cursor and write
//     disjoint slots; the caller folds serially afterwards, so results are
//     independent of the worker count. The first worker exception is
//     rethrown on the caller's thread.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "rstp/ioa/trace.h"
#include "rstp/protocols/base.h"

namespace rstp::sim {

inline constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

[[nodiscard]] constexpr std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  return (h ^ v) * kFnvPrime;
}

/// Coverage fingerprint of one applied event given the two protocol
/// automata's current counter state (see the header comment).
[[nodiscard]] std::uint64_t event_fingerprint(const ioa::TimedEvent& e,
                                              const protocols::TransmitterBase& t,
                                              const protocols::ReceiverBase& r);

/// FNV-1a over a bit sequence (output hashing).
[[nodiscard]] std::uint64_t hash_bits(const std::vector<ioa::Bit>& bits);

/// FNV-1a fold of an already-sorted value sequence (order-independent
/// coverage hashing: sort first, then fold).
[[nodiscard]] std::uint64_t hash_sorted(const std::vector<std::uint64_t>& values);

/// Runs fn(0..n-1) across up to `jobs` worker threads (0 = hardware
/// concurrency). fn must write only to its own slot `i`.
void parallel_for_slots(std::size_t n, unsigned jobs,
                        const std::function<void(std::size_t)>& fn);

}  // namespace rstp::sim
