// The execution engine: produces one timed execution of A_t ∘ C(P) ∘ A_r
// inside good(A) (paper §4).
//
// The simulator owns the interleaving semantics:
//   * Each process takes local steps at instants chosen by its StepScheduler;
//     every returned offset/gap is validated against [0,c2] / [c1,c2], so all
//     generated executions satisfy Σ(A_t, A_r) by construction.
//   * recv events fire at the channel's delivery instants (inputs to the
//     destination process; they do not consume a process step).
//   * Simultaneous events are ordered deterministically: deliveries first,
//     then the transmitter's step, then the receiver's step. Within a batch
//     of simultaneous deliveries the channel's (order_key, send_seq) order
//     applies. This tie rule is the discrete stand-in for the continuous
//     model's measure-zero coincidences; the verifier does not rely on it.
//   * A process whose automaton has no enabled local action is stopped (the
//     execution restricted to it is finite and fair); it resumes stepping if
//     a later input re-enables it.
//
// Fault injection: `drop_every_nth` silently discards every n-th send before
// it reaches the channel — deliberately *outside* the paper's model — to
// demonstrate (in tests) that the protocols are exactly as strong as the
// model's guarantees and that the verifier flags such executions.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "rstp/channel/channel.h"
#include "rstp/core/params.h"
#include "rstp/ioa/automaton.h"
#include "rstp/ioa/trace.h"
#include "rstp/obs/run_metrics.h"
#include "rstp/sim/scheduler.h"

namespace rstp::obs::trace {
class ModelRecorder;
}  // namespace rstp::obs::trace

namespace rstp::est {
class TimingEstimator;
}  // namespace rstp::est

namespace rstp::sim {

struct SimConfig {
  core::TimingParams params{};
  /// Per-process step-gap laws (the paper's §7 generalization where each
  /// process has its own c1, c2). Unset means `params` applies to both.
  /// Only c1/c2 of the overrides are used; d always comes from `params`.
  std::optional<core::TimingParams> transmitter_params;
  std::optional<core::TimingParams> receiver_params;
  /// Hard cap on applied actions; a run that hits it reports quiescent=false.
  std::uint64_t max_events = 10'000'000;
  /// Record the full timed trace (disable for very long effort runs).
  bool record_trace = true;
  /// Fault injection: if nonzero, every n-th send (1-based count) is dropped.
  std::uint32_t drop_every_nth = 0;
  /// Optional observer invoked after every applied event (deliveries and
  /// local steps alike), in execution order. Lets tests check protocol
  /// invariants at every intermediate state rather than post-hoc; throwing
  /// from it aborts the run with the exception.
  std::function<void(const ioa::TimedEvent&)> observer;
  /// Optional causal span tracer (obs/trace.h; non-owning, must outlive
  /// run()). A pure observer of the execution: arming it cannot change any
  /// result bit. Null (the default) costs one pointer test per event.
  obs::trace::ModelRecorder* tracer = nullptr;
  /// Optional online timing estimator (est/estimator.h; non-owning, must
  /// outlive run()). When set, every local-step gap and every send→delivery
  /// delay is fed to it as it happens — the in-run observation channel the
  /// adaptive protocols re-plan from. Feeding it is observation only; the
  /// estimates change behaviour solely through a planner the automata hold.
  est::TimingEstimator* estimator = nullptr;
};

struct RunResult {
  ioa::TimedTrace trace;                          ///< empty when !record_trace
  std::vector<ioa::Bit> output;                   ///< Y: messages written, in order
  std::optional<Time> last_transmitter_send;      ///< t(last-send) for effort
  Time end_time{};                                ///< time of the last event
  std::uint64_t event_count = 0;
  std::uint64_t transmitter_steps = 0;
  std::uint64_t receiver_steps = 0;
  std::uint64_t transmitter_sends = 0;
  std::uint64_t receiver_sends = 0;
  std::uint64_t dropped_packets = 0;
  /// Faults the channel's injector applied (empty without an injector; see
  /// channel::Channel::set_fault_injector). The fault-aware verifier consumes
  /// this log to excuse the violations the injected faults explain.
  std::vector<fault::FaultEvent> faults;
  bool quiescent = false;  ///< true iff the run ended in global quiescence
  /// Always-on structured metrics (O(1) memory, populated even when
  /// record_trace is false): per-direction send/recv/drop counters, protocol
  /// automata counters, and delay/gap histograms. Pure functions of the
  /// simulated execution — safe to compare across thread counts.
  obs::RunMetrics metrics;
};

class Simulator {
 public:
  /// All references must outlive run(). The channel must be empty and the
  /// automata in their start states; run() may be called once.
  Simulator(ioa::Automaton& transmitter, ioa::Automaton& receiver, channel::Channel& chan,
            StepScheduler& transmitter_sched, StepScheduler& receiver_sched, SimConfig config);

  /// Runs to global quiescence (both processes stopped or quiescent with no
  /// pending work and the channel empty) or to the event cap.
  [[nodiscard]] RunResult run();

  // --- Incremental driving ---------------------------------------------------
  // The multiplexed engine (sim/multi_session.h) interleaves many sessions on
  // one clock by popping the session with the earliest next_instant() from a
  // cross-session heap and advancing it one dispatch. The sequence
  //   start(); while (next_instant()) advance(); take_result()
  // is exactly run() — run() itself is implemented on top of these — so a
  // session driven incrementally produces a bitwise-identical RunResult no
  // matter how its dispatches interleave with other sessions'. The two APIs
  // are mutually exclusive on one instance.

  /// Validates and arms the run: configures the metric histograms and draws
  /// both processes' first step offsets. May be called once.
  void start();

  /// The instant of the next pending dispatch: the earliest of the channel's
  /// next delivery and both processes' next steps. nullopt when the run is
  /// over — the event cap was reached or the session is globally quiescent.
  /// Cached until the next advance(), so repeated calls are free.
  [[nodiscard]] std::optional<Time> next_instant();

  /// Applies exactly one dispatch at next_instant(): the due delivery batch
  /// if one is pending, else the transmitter's step, else the receiver's.
  /// Requires next_instant() to have a value.
  void advance();

  /// Folds the automata counters and the channel fault log into the result
  /// and returns it. Requires next_instant() == nullopt; call once.
  [[nodiscard]] RunResult take_result();

 private:
  struct ProcessState {
    ioa::Automaton* automaton = nullptr;
    StepScheduler* scheduler = nullptr;
    Time next_step{};
    Time last_step_time{};  ///< instant of the previous local step (gap metric)
    std::uint64_t steps_taken = 0;
    bool stopped = false;
  };

  void record(RunResult& result, Time time, ioa::Actor actor, const ioa::Action& action);
  void take_process_step(RunResult& result, ProcessState& ps, ioa::ProcessId id);
  void deliver_due(RunResult& result, Time now);
  [[nodiscard]] Duration validated_gap(ioa::ProcessId id, StepScheduler& sched,
                                       std::uint64_t step_index) const;
  [[nodiscard]] const core::TimingParams& params_for(ioa::ProcessId id) const;

  [[nodiscard]] const obs::ProtocolCounters* counters_of(ioa::ProcessId id) const;

  /// True when nothing remains: event cap reached or globally quiescent.
  [[nodiscard]] bool finished() const;
  [[nodiscard]] std::optional<Time> compute_next_instant() const;

  channel::Channel* channel_;
  SimConfig config_;
  ProcessState procs_[2];  // indexed by ProcessId
  /// Cached CounterSource view of each automaton (null when it has none);
  /// resolved once in the constructor so tracer hooks skip the dynamic_cast.
  const obs::CounterSource* counter_sources_[2] = {nullptr, nullptr};
  std::uint64_t next_seq_ = 0;
  bool record_events_ = false;  ///< cached record_trace || observer
  bool ran_ = false;
  bool taken_ = false;
  /// Cached next_instant() (valid until the next advance()).
  std::optional<Time> instant_;
  bool instant_valid_ = false;
  /// The in-progress result of the incremental API; run() uses it too.
  RunResult result_;
};

}  // namespace rstp::sim
