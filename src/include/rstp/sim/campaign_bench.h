// The machine-tracked performance baseline: one fixed reference campaign run
// at several thread counts, a determinism cross-check, and codec hot-path
// timings, all emitted as BENCH_campaign.json (schema documented in
// docs/PERF.md). bench/bench_campaign.cpp and `rstp bench` are thin wrappers
// over this module, so the baseline regenerated anywhere is produced by the
// same code path the tests exercise.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <utility>
#include <vector>

#include "rstp/sim/campaign.h"

namespace rstp::sim {

/// The fixed 64-job reference grid (4 protocols × 2 timings × 2 alphabets ×
/// 2 environments × 2 seeds). Small enough for CI, large enough that the
/// thread pool has real work to steal.
[[nodiscard]] CampaignSpec reference_campaign_spec();

/// The checked-in golden grid (tests/golden/campaign_baseline.jsonl): 32
/// jobs, fixed campaign seed, deliberately smaller and *distinct* from the
/// bench grid so regenerating the perf baseline never silently rewrites the
/// regression gate's reference. `rstp campaign` runs exactly this spec; the
/// metrics-gate CI job diffs its output against the checked-in file.
[[nodiscard]] CampaignSpec golden_campaign_spec();

struct CampaignBenchOptions {
  /// Thread counts to sweep; 0 entries mean hardware concurrency.
  std::vector<unsigned> thread_counts = {1, 2, 4, 0};
  /// Iterations for the codec rank/unrank timing loops.
  std::size_t codec_iterations = 512;
  /// (k, n) points for the codec timings; k >= 8 is the regression gate.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> codec_points = {{8, 32}, {32, 32}};
  /// Live progress lines for the (untimed) warmup run only, so the timed
  /// stages never carry reporting overhead. Null keeps the bench silent.
  CampaignProgress progress;
};

/// One campaign sweep stage at a fixed thread count.
struct CampaignStage {
  unsigned threads = 1;         ///< resolved count (0 in options → actual)
  double wall_ms = 0;
  double jobs_per_sec = 0;
  double speedup_vs_serial = 0;  ///< serial wall / this wall
  bool identical_to_serial = false;
};

/// Codec timings at one (k, n): cumulative-table path vs the seed recurrence.
struct CodecTiming {
  std::uint32_t k = 0;
  std::uint32_t n = 0;
  double rank_ns = 0;
  double unrank_ns = 0;
  double rank_reference_ns = 0;
  double unrank_reference_ns = 0;

  [[nodiscard]] bool table_beats_reference() const {
    return rank_ns < rank_reference_ns && unrank_ns < unrank_reference_ns;
  }
};

struct CampaignBenchReport {
  unsigned hardware_threads = 1;
  std::size_t jobs = 0;
  std::size_t incorrect_jobs = 0;  ///< from the serial run (must be 0)
  std::vector<CampaignStage> stages;
  bool deterministic = false;  ///< every stage bitwise matched the serial run
  std::vector<CodecTiming> codec;
  /// The serial reference run's full result (per-job RunMetrics included):
  /// lets callers export the grid's metrics without rerunning the campaign.
  CampaignResult serial_result;

  /// True iff every job was correct and every stage reproduced the serial
  /// result — the conditions under which the baseline is trustworthy.
  [[nodiscard]] bool ok() const { return incorrect_jobs == 0 && deterministic; }
};

/// Runs the reference campaign through every thread count, checks each
/// result bitwise against the serial one, and times the codec paths.
[[nodiscard]] CampaignBenchReport run_campaign_bench(const CampaignBenchOptions& options = {});

/// Serializes the report as the BENCH_campaign.json document.
void write_campaign_bench_json(std::ostream& os, const CampaignBenchReport& report);

/// Human-readable summary table (the bench binary's stdout).
void print_campaign_bench(std::ostream& os, const CampaignBenchReport& report);

}  // namespace rstp::sim
