// Adversary synthesis: coverage-guided search over legal channel behaviours
// for effort maximizers, gated against the paper's lower bounds.
//
// The lower-bound constructions (Lemma 5.1/5.4, Theorems 5.3/5.6) are
// realized elsewhere in the repo by *hand-coded* adversaries
// (Environment::worst_case(): both processes stepping every c2, every packet
// held the full d). This module stops trusting that we thought of the worst
// case: it reuses the fuzzer's generational machinery (search_support.h) to
// *search* the space of legal ScheduleGenomes — per-packet delays, tie
// orders, per-process step gaps — with fitness = t(last-send), the effort
// numerator, instead of crash novelty.
//
// Guarantees the design leans on:
//   * legality by construction — every candidate passes channel::check_genome
//     before it runs, so the search can only explore good(A); the paper's
//     protocols are correct there, and an incorrect/non-quiescent run is
//     discarded as unfit rather than celebrated.
//   * best ≥ hand-coded — generation 0 seeds the population with
//     hand_equivalent_genome() (the exact worst_case() environment as a
//     genome), and the elite is monotone, so the search's answer can never
//     fall below the hand-coded adversary evaluated on the same input.
//   * bitwise determinism across --jobs — same generational discipline as
//     run_fuzz: batches fully planned before parallel evaluation, disjoint
//     result slots, serial fold. AdversaryResult::result_hash is the
//     identity tests pin across jobs 1/3/8.
//   * replayability — the winning genome serializes as a minimized
//     `rstp-adversary-v1` artifact; `rstp replay` re-executes it and
//     compares every recorded field, like fuzz repros.
//
// Per cell the empirical gap to the theory is reported as
//   gap_ratio = best_effort / lower_bound,
// with lower_bound = Theorem 5.3's bound for r-passive protocols and Theorem
// 5.6's for active ones. Ratios land in the RunMetricsRecord stream
// (obs/sinks.h) so the golden diff gate (`rstp report --fail-on
// 'gap_ratio_max>…'`) turns §5 into a continuously-tested empirical claim.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "rstp/channel/synthesized.h"
#include "rstp/core/bounds.h"
#include "rstp/obs/sinks.h"
#include "rstp/protocols/factory.h"

namespace rstp::sim {

/// One grid cell: a protocol under fixed timing, alphabet, and input size.
struct AdversaryCell {
  protocols::ProtocolKind protocol = protocols::ProtocolKind::Beta;
  core::TimingParams params = core::TimingParams::make(1, 2, 6);
  std::uint32_t k = 4;
  std::uint32_t input_bits = 24;

  friend bool operator==(const AdversaryCell&, const AdversaryCell&) = default;
};

/// Everything one genome evaluation produced — the adversary-search analogue
/// of FuzzCaseResult. A pure function of (cell, input_seed, genome,
/// max_events).
struct GenomeEval {
  bool valid = false;      ///< protocol accepted the config and the run completed
  bool correct = false;    ///< Y == X
  bool quiescent = false;  ///< ran to global quiescence (not the event cap)
  std::int64_t last_send = 0;  ///< t(last-send) ticks; the fitness. 0 if no send
  double effort = 0;           ///< last_send / input_bits
  std::int64_t end_time = 0;
  std::uint64_t output_hash = 0;
  std::uint64_t event_count = 0;
  std::uint64_t coverage_hash = 0;
  std::vector<std::uint64_t> fingerprints;  ///< distinct, sorted
  /// Fit = admissible as an effort witness: only correct, quiescent runs
  /// count (an adversary that *breaks* the protocol belongs to the fuzzer).
  [[nodiscard]] bool fit() const { return valid && correct && quiescent; }
};

/// Runs `cell`'s protocol against the schedules `genome` describes (genome
/// schedulers for both processes + SynthesizedPolicy channel) and scores it.
/// Throws ContractViolation if the genome is illegal for cell.params.
[[nodiscard]] GenomeEval evaluate_genome(const AdversaryCell& cell, std::uint64_t input_seed,
                                         const channel::ScheduleGenome& genome,
                                         std::uint64_t max_events = 200'000);

/// The hand-coded worst case (Environment::worst_case(): SlowFixed/SlowFixed/
/// MaxDelay) expressed as a genome — the search's generation-0 floor.
[[nodiscard]] channel::ScheduleGenome hand_equivalent_genome(const core::TimingParams& params);

/// Per-cell progress, published between cells (serially; display only).
struct AdversaryProgress {
  std::size_t cell_index = 0;  ///< 0-based, just completed
  std::size_t cell_count = 0;
};

struct AdversarySpec {
  std::vector<AdversaryCell> grid;
  std::uint64_t seed = 1;
  std::uint64_t budget = 64;  ///< genome evaluations per cell (minimization excluded)
  unsigned jobs = 1;          ///< 0 = hardware concurrency
  std::uint64_t max_events = 200'000;
  /// Called after each cell's search completes; must not mutate the spec.
  std::function<void(const AdversaryProgress&)> on_cell;
};

struct AdversaryCellResult {
  AdversaryCell cell;
  std::uint64_t input_seed = 0;  ///< derived from (spec.seed, cell index)
  double lower_bound = 0;        ///< Theorem 5.3 (r-passive) or 5.6 (active)
  std::int64_t hand_last_send = 0;  ///< the hand-coded adversary's fitness
  double hand_effort = 0;
  /// The synthesized winner (post-minimization re-evaluation).
  channel::ScheduleGenome best_genome;
  GenomeEval best;
  double gap_ratio = 0;  ///< best.effort / lower_bound
  std::uint64_t executed = 0;  ///< evaluations spent (excluding minimization)
  std::size_t coverage = 0;    ///< distinct fingerprints reached in this cell

  /// The acceptance criterion, per cell: a fit adversary at least as costly
  /// as the hand-coded one.
  [[nodiscard]] bool beats_hand() const {
    return best.fit() && best.last_send >= hand_last_send;
  }
};

struct AdversaryResult {
  std::vector<AdversaryCellResult> cells;
  /// FNV fold of every cell's exact integers (fitness, hashes, genome
  /// tables) — the cross-jobs determinism identity.
  std::uint64_t result_hash = 0;

  [[nodiscard]] bool all_beat_hand() const {
    for (const AdversaryCellResult& c : cells) {
      if (!c.beats_hand()) return false;
    }
    return !cells.empty();
  }
};

/// Runs the search: cells sequentially, each cell's generations evaluated in
/// parallel (spec.jobs) with a serial fold. Deterministic for a fixed spec
/// across any jobs value.
[[nodiscard]] AdversaryResult run_adversary_search(const AdversarySpec& spec);

/// The checked-in gap-baseline grid: the four paper protocols × timings
/// {(1,2,6), (2,3,9)} × k ∈ {2, 6}, 24 input bits — 16 cells.
[[nodiscard]] std::vector<AdversaryCell> golden_adversary_grid();

/// A 4-cell smoke grid (one cell per paper protocol) for CI.
[[nodiscard]] std::vector<AdversaryCell> quick_adversary_grid();

/// One RunMetricsRecord per cell (effort = best effort, gap_ratio filled,
/// seed = spec seed) — the feed for `rstp report --fail-on 'gap_ratio_max>…'`.
[[nodiscard]] std::vector<obs::RunMetricsRecord> adversary_metrics_records(
    const AdversaryResult& result, std::uint64_t seed);

/// `rstp-adversary-v1` artifact: the winning genome for one cell plus the
/// recorded outcome, replayable bit-for-bit. Same line grammar as fuzz
/// repros (`key values…`, `#` comments, closed by `end`).
struct AdversaryRepro {
  AdversaryCell cell;
  std::uint64_t input_seed = 0;
  std::uint64_t max_events = 200'000;
  channel::ScheduleGenome genome;
  std::int64_t expect_last_send = 0;
  std::uint64_t expect_output_hash = 0;
  std::uint64_t expect_events = 0;
  bool expect_correct = false;
  bool expect_quiescent = false;
};

[[nodiscard]] AdversaryRepro make_adversary_repro(const AdversaryCellResult& cell_result,
                                                  std::uint64_t max_events);
void write_adversary_repro(std::ostream& os, const AdversaryRepro& repro);
/// Throws rstp::ModelError on malformed input (including illegal genomes).
[[nodiscard]] AdversaryRepro parse_adversary_repro(std::istream& is);

/// Re-executes the artifact's genome and compares every recorded field.
struct AdversaryReplayOutcome {
  GenomeEval eval;
  bool reproduced = false;
  std::string mismatch;  ///< first differing field, "got vs recorded"
};
[[nodiscard]] AdversaryReplayOutcome replay_adversary_repro(const AdversaryRepro& repro);

/// The artifact header line, exposed so `rstp replay` can sniff file types.
[[nodiscard]] std::string_view adversary_repro_header();

}  // namespace rstp::sim
