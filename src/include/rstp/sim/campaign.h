// Parallel simulation campaigns: declarative grids of protocol runs fanned
// across a thread pool.
//
// Every experiment sweep in the repo (EXPERIMENTS.md E1–E3, the bench suite,
// the effort-distribution sampler) is a grid of independent simulations —
// protocol × (c1, c2, d) × k × environment × seed. A Campaign materializes
// that grid as a job list and executes it with work-stealing workers:
//
//   * Jobs are numbered in grid order; an atomic cursor hands the next index
//     to whichever worker is free (no static partitioning, so a few slow
//     cells — large k, adversarial delivery — cannot strand a thread).
//   * Each job derives its RNG seeds by SplitMix64-mixing the campaign seed
//     with the job index, so job i's randomness is a fixed function of the
//     spec alone: independent of thread count, scheduling order, and of
//     every other job.
//   * Results land in a pre-sized slot per job, and aggregates are reduced
//     serially in index order after the join. A CampaignResult is therefore
//     bitwise identical to the serial (threads = 1) run regardless of
//     thread count — determinism is asserted by campaign_test.cpp and the
//     bench_campaign harness, not just promised.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "rstp/core/drift.h"
#include "rstp/core/effort.h"
#include "rstp/core/params.h"
#include "rstp/est/estimator.h"
#include "rstp/obs/run_metrics.h"
#include "rstp/obs/sinks.h"
#include "rstp/protocols/factory.h"

namespace rstp::sim {

/// The declarative grid: the cross product of every axis, times
/// `seeds_per_cell` replicas with distinct derived seeds.
struct CampaignSpec {
  std::vector<protocols::ProtocolKind> protocols;
  std::vector<core::TimingParams> timings;
  std::vector<std::uint32_t> alphabets;  ///< k values
  /// Scheduler/delivery-policy choices; each entry's `seed` field is ignored
  /// and replaced by the per-job derived seed.
  std::vector<core::Environment> environments;
  std::uint32_t seeds_per_cell = 1;
  std::size_t input_bits = 64;      ///< |X| of every job (random, per-job seed)
  std::uint64_t campaign_seed = 1;  ///< root of every derived stream
  std::uint64_t max_events = 50'000'000;

  /// Estimator sweep (est/runner.h): with `estimator_enabled`, every job runs
  /// as an oracle/estimator pair in the same environment and records
  /// est_penalty = effort_est / effort_oracle plus the final estimator
  /// gauges. Requires every protocol in the grid to be Beta or Gamma.
  bool estimator_enabled = false;
  est::EstimatorConfig estimator{};
  /// Drift axis: each entry multiplies the grid; an empty DriftSpec means
  /// "stationary" (the environment's own schedulers/policy). An empty vector
  /// contributes no axis, keeping pre-existing grids' job decomposition —
  /// and therefore their derived seed streams — bitwise identical.
  std::vector<core::DriftSpec> drifts;

  /// Throws rstp::ContractViolation if any axis is empty or a parameter set
  /// is invalid.
  void validate() const;

  /// Total number of jobs in the grid.
  [[nodiscard]] std::size_t job_count() const;
};

/// The (environment seed, input seed) pair derived for one unit of a sweep —
/// campaign job `index` under `campaign_seed`, or mega session `index` under
/// the MultiSession base seed. SplitMix64 over root + index, environment seed
/// drawn first: the shared derivation is what makes a MultiSession session
/// reproducible as a standalone core::run_protocol call with the same seeds.
struct DerivedSeeds {
  std::uint64_t environment = 0;
  std::uint64_t input = 0;
};
[[nodiscard]] DerivedSeeds derive_unit_seeds(std::uint64_t root, std::uint64_t index);

/// One materialized cell of the grid.
struct CampaignJob {
  std::size_t index = 0;
  protocols::ProtocolKind protocol = protocols::ProtocolKind::Alpha;
  core::TimingParams params{};
  std::uint32_t k = 2;
  core::Environment environment{};  ///< seed already derived for this job
  std::uint64_t input_seed = 0;
  core::DriftSpec drift{};  ///< empty = stationary cell
  bool estimator_enabled = false;
  est::EstimatorConfig estimator{};
};

/// Per-job outcome: the effort/step/send counters a sweep aggregates, plus
/// enough identity to interpret a row without the spec at hand.
struct CampaignJobResult {
  std::size_t index = 0;
  protocols::ProtocolKind protocol = protocols::ProtocolKind::Alpha;
  core::TimingParams params{};
  std::uint32_t k = 2;
  std::uint64_t env_seed = 0;
  double effort = 0;  ///< t(last-send)/n ticks per bit; 0 if nothing was sent
  std::uint64_t event_count = 0;
  std::uint64_t transmitter_steps = 0;
  std::uint64_t receiver_steps = 0;
  std::uint64_t transmitter_sends = 0;
  std::uint64_t receiver_sends = 0;
  bool output_correct = false;
  bool quiescent = false;
  bool failed = false;  ///< the run threw (error holds the message)
  std::string error;
  /// The run's full metric snapshot (populated with record_trace=false).
  /// Purely simulation-derived, so the defaulted == below keeps the
  /// campaign's bitwise-determinism guarantee covering the metrics too.
  obs::RunMetrics metrics;
  /// Estimator cells only (est/runner.h): effort_est / effort_oracle for the
  /// pair, and the estimated run's final gauges. Zero elsewhere.
  double est_penalty = 0;
  obs::EstimatorGauges est{};

  friend bool operator==(const CampaignJobResult&, const CampaignJobResult&) = default;
};

/// min/max/mean of one metric over the campaign, reduced in job order.
struct CampaignAggregate {
  double min = 0;
  double max = 0;
  double mean = 0;

  friend bool operator==(const CampaignAggregate&, const CampaignAggregate&) = default;
};

struct CampaignResult {
  std::vector<CampaignJobResult> jobs;  ///< in grid order, any thread count
  CampaignAggregate effort{};           ///< over jobs that sent at least once
  CampaignAggregate events{};
  std::uint64_t total_events = 0;
  std::uint64_t total_transmitter_sends = 0;
  /// Whole-grid fold of every job's RunCounters, reduced in job order.
  /// (Histograms are not folded: their bucket layouts vary with each cell's
  /// timing parameters; per-job histograms live in jobs[i].metrics.)
  obs::RunCounters total_counters;
  /// Over estimator cells with a positive penalty; zero for oracle-only grids.
  CampaignAggregate est_penalty{};
  std::size_t incorrect = 0;  ///< jobs with Y != X, non-quiescent, or failed

  [[nodiscard]] bool all_correct() const { return incorrect == 0; }

  friend bool operator==(const CampaignResult&, const CampaignResult&) = default;
};

/// One protocol's slice of the grid as the live monitor sees it. All counts
/// are folded from the workers' relaxed atomics, so they are approximations
/// while the campaign runs (exact in the final snapshot) and display-only
/// by contract.
struct CampaignProtocolSnapshot {
  protocols::ProtocolKind protocol = protocols::ProtocolKind::Alpha;
  std::uint64_t done = 0;
  std::uint64_t total = 0;
  std::uint64_t events = 0;
  double effort_sum = 0;  ///< over finished jobs that sent at least once
  std::uint64_t effort_jobs = 0;
};

/// A display-only snapshot of a running campaign, published through
/// CampaignProgress::on_snapshot. Everything here flows one way — workers →
/// relaxed atomics → snapshot → display — so nothing a consumer does can
/// perturb the bitwise-deterministic CampaignResult.
struct CampaignSnapshot {
  /// Data-delay display buckets: bucket i counts deliveries delayed i ticks,
  /// the last bucket clamps larger delays. A fixed layout (unlike the
  /// per-cell RunMetrics histograms, whose windows vary with each cell's d)
  /// so the whole grid folds into one rolling distribution.
  static constexpr std::size_t kDelayBuckets = 64;

  std::size_t jobs_done = 0;
  std::size_t jobs_total = 0;
  std::uint64_t events = 0;
  double effort_sum = 0;  ///< over finished jobs that sent at least once
  std::size_t effort_jobs = 0;
  double elapsed_seconds = 0;
  bool final_snapshot = false;  ///< true for the one snapshot after the join
  std::vector<CampaignProtocolSnapshot> protocols;  ///< spec protocol order
  std::vector<std::uint64_t> delay_buckets;         ///< size kDelayBuckets
  std::uint64_t delay_count = 0;
};

/// Optional live progress reporting for long grids: a monitor thread prints
/// "jobs done/total, %, events, running mean effort, ETA" lines to `out`
/// every `interval`, plus one final line at completion, and/or hands a
/// structured CampaignSnapshot to `on_snapshot` on the same cadence (the
/// dashboard's feed). Reporting never touches the result — CampaignResult
/// stays bitwise deterministic. `interval` must be positive whenever a sink
/// is attached (a zero interval would busy-spin the monitor thread);
/// Campaign::run validates this.
struct CampaignProgress {
  std::ostream* out = nullptr;  ///< null disables line reporting
  std::chrono::milliseconds interval{2000};
  /// Called from the monitor thread; must not block for long (the next
  /// snapshot waits for it) and must not touch campaign inputs/outputs.
  std::function<void(const CampaignSnapshot&)> on_snapshot;

  /// True when any sink is attached (the monitor thread exists only then).
  [[nodiscard]] bool active() const { return out != nullptr || on_snapshot != nullptr; }
};

class Campaign {
 public:
  /// Validates and freezes the spec.
  explicit Campaign(CampaignSpec spec);

  [[nodiscard]] const CampaignSpec& spec() const { return spec_; }
  [[nodiscard]] std::size_t job_count() const { return spec_.job_count(); }

  /// The grid cell at `index` (with its derived seeds). Index order is
  /// protocol-major: protocol, timing, k, environment, seed replica.
  [[nodiscard]] CampaignJob job(std::size_t index) const;

  /// Runs every job on `threads` workers (0 = hardware concurrency) and
  /// merges. The result is bitwise identical for every thread count.
  [[nodiscard]] CampaignResult run(unsigned threads = 1) const;

  /// As above, with live progress lines (see CampaignProgress).
  [[nodiscard]] CampaignResult run(unsigned threads, const CampaignProgress& progress) const;

 private:
  CampaignSpec spec_;
};

/// Runs a single materialized job (the campaign worker's body; exposed for
/// tests and ad-hoc reruns of one grid cell).
[[nodiscard]] CampaignJobResult run_campaign_job(const CampaignJob& job, std::size_t input_bits,
                                                 std::uint64_t max_events);

/// Flattens a campaign result into JSONL-exportable records: one
/// RunMetricsRecord per job, in grid order, carrying the job's identity and
/// its RunMetrics snapshot. `input_bits` is taken from the spec that
/// produced the result (jobs do not carry it). end_time stays 0 — a
/// campaign job reports effort, not an event-time trace.
[[nodiscard]] std::vector<obs::RunMetricsRecord> campaign_metrics_records(
    const CampaignResult& result, std::size_t input_bits);

}  // namespace rstp::sim
