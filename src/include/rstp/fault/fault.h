// Fault injection: channel behaviors deliberately *outside* good(A).
//
// The paper's guarantees hold only for executions whose channel delivers
// every packet exactly once within d. This module produces the complement:
// drops, bounded duplication, delivery after the deadline, and payload
// corruption. Every injected fault is recorded as a structured FaultEvent so
// downstream consumers (the simulator, core::verify_trace_with_faults, the
// fuzzer) can distinguish "the model was violated, and here is where" from
// "the protocol is buggy":
//
//   * a run with fault events is excused from liveness (Y may be incomplete)
//     and from the channel-law checks the faults explain;
//   * safety violations (Y not a prefix of X) are excused only when a fault
//     event precedes them — a wrong write with a clean channel prefix is
//     always a protocol bug (property P6 in tests/property_test.cpp);
//   * a protocol that throws ContractViolation after a fault event is a
//     *fail-stop* outcome, not a bug: several receivers/transmitters check
//     model assumptions (duplicate-free acks, in-alphabet symbols) and the
//     check firing means the fault was detected.
//
// The injector sits inside channel::Channel (see Channel::set_fault_injector)
// where it intercepts each send before the delivery policy runs. Decisions
// are a pure function of (seed, send_seq), never of the draw history, so a
// faulted execution is bit-reproducible from its FuzzCase alone.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "rstp/common/time.h"
#include "rstp/ioa/action.h"

namespace rstp::fault {

enum class FaultKind : std::uint8_t {
  Drop,       ///< packet silently lost (violates the lossless law)
  Duplicate,  ///< extra copies delivered (violates the bijection)
  Late,       ///< delivered after sent_at + d (violates Δ(C(P)))
  Corrupt,    ///< payload replaced in flight (recv ≠ send)
};

[[nodiscard]] std::string_view to_string(FaultKind kind);
/// Inverse of to_string; nullopt for unknown names.
[[nodiscard]] std::optional<FaultKind> fault_kind_from_string(std::string_view name);
std::ostream& operator<<(std::ostream& os, FaultKind kind);

/// One injected fault, recorded by the channel at the send it hit. For
/// Duplicate faults one event is logged per extra copy.
struct FaultEvent {
  FaultKind kind{};
  std::uint64_t send_seq = 0;  ///< channel send index the fault applied to
  Time at{};                   ///< the send instant
  ioa::Packet original{};      ///< packet as handed to the channel
  ioa::Packet injected{};      ///< packet as enqueued (== original unless Corrupt)
  Duration late_by{0};         ///< Late: delivery overshoot past the deadline

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

std::ostream& operator<<(std::ostream& os, const FaultEvent& e);

/// What an injector wants done to one send. Fields compose in the order
/// corrupt → drop → late/duplicate, though seeded injectors emit at most one
/// kind per packet (keeping per-mille rates interpretable).
struct FaultDecision {
  bool drop = false;
  std::uint32_t duplicates = 0;  ///< extra copies beyond the original
  Duration late_by{0};           ///< > 0 schedules delivery at deadline + late_by
  std::optional<std::uint32_t> corrupt_payload;

  [[nodiscard]] bool benign() const {
    return !drop && duplicates == 0 && late_by.ticks() == 0 && !corrupt_payload.has_value();
  }
};

/// Strategy deciding the fault (if any) for each send. Implementations must
/// be deterministic functions of their construction and the call arguments.
class FaultInjector {
 public:
  virtual ~FaultInjector() = default;

  /// Decides the fate of the `send_seq`-th send. `deadline` = sent_at + d.
  [[nodiscard]] virtual FaultDecision decide(const ioa::Packet& packet, Time sent_at,
                                             Time deadline, std::uint64_t send_seq) = 0;
};

/// Per-mille fault probabilities plus shape bounds. Integral rates keep the
/// decision arithmetic exact (no floating point in the reproducibility path).
/// The four rates must sum to ≤ 1000: each send suffers at most one fault
/// class, drawn from one roll.
struct FaultRates {
  std::uint32_t drop_pm = 0;
  std::uint32_t duplicate_pm = 0;
  std::uint32_t late_pm = 0;
  std::uint32_t corrupt_pm = 0;
  std::uint32_t max_duplicates = 2;  ///< extra copies per Duplicate fault, >= 1
  Duration max_late{4};              ///< max overshoot past the deadline, >= 1 tick
  /// Corrupted payloads are drawn from [0, corrupt_space), excluding the
  /// original value. Callers set this to the protocol's alphabet k so the
  /// corruption stays in-alphabet (out-of-alphabet bytes are a transport
  /// concern, not a scheduling one; receivers fail-stop on them anyway).
  std::uint32_t corrupt_space = 4;

  [[nodiscard]] bool any() const {
    return drop_pm + duplicate_pm + late_pm + corrupt_pm > 0;
  }
  /// Throws rstp::ContractViolation on out-of-range fields.
  void validate() const;

  friend bool operator==(const FaultRates&, const FaultRates&) = default;
};

/// Forces a specific fault at one send index, regardless of the rates; used
/// by tests and by fuzzer mutations to target single packets. `arg` is
/// kind-specific: extra copies (Duplicate), overshoot ticks (Late), or the
/// replacement payload (Corrupt); ignored for Drop.
struct PinnedFault {
  std::uint64_t send_seq = 0;
  FaultKind kind{};
  std::uint32_t arg = 0;

  friend bool operator==(const PinnedFault&, const PinnedFault&) = default;
};

/// The standard injector: pinned faults first, then seeded per-mille rates.
/// The decision for send_seq is derived from (seed, send_seq) alone — two
/// injectors with equal construction agree packet-by-packet even if one run
/// sends more packets than the other.
class SeededFaultInjector final : public FaultInjector {
 public:
  SeededFaultInjector(std::uint64_t seed, FaultRates rates,
                      std::vector<PinnedFault> pins = {});

  [[nodiscard]] FaultDecision decide(const ioa::Packet& packet, Time sent_at, Time deadline,
                                     std::uint64_t send_seq) override;

 private:
  std::uint64_t seed_;
  FaultRates rates_;
  std::vector<PinnedFault> pins_;
};

}  // namespace rstp::fault
