#include "rstp/general/run.h"

#include "rstp/channel/policies.h"
#include "rstp/common/check.h"
#include "rstp/common/rng.h"
#include "rstp/sim/simulator.h"

namespace rstp::general {

namespace {

using core::Environment;

/// Delivery policy respecting the [d1, d2] window.
std::unique_ptr<channel::DeliveryPolicy> make_general_policy(Environment::Delay kind,
                                                             const GeneralTimingParams& params,
                                                             std::uint64_t seed) {
  switch (kind) {
    case Environment::Delay::Max:
      return channel::make_fixed_delay(params.d_hi);
    case Environment::Delay::Zero:
      // "As fast as the model allows": the window's lower edge.
      return channel::make_fixed_delay(params.d_lo);
    case Environment::Delay::Random:
      return channel::make_uniform_random(seed, params.d_lo, params.d_hi, params.d_hi);
    case Environment::Delay::Adversarial: {
      const Duration window = params.t_c1 * params.adversary_delta();
      if (window.ticks() <= 0) {
        // Zero-width delivery window: batching is impossible; the strongest
        // remaining adversary is plain max delay.
        return channel::make_fixed_delay(params.d_hi);
      }
      return channel::make_adversarial_batch(window, params.d_hi);
    }
  }
  RSTP_UNREACHABLE("unknown delay kind");
}

}  // namespace

GeneralEnvironment GeneralEnvironment::randomized(std::uint64_t seed) {
  GeneralEnvironment env;
  env.transmitter_sched = Environment::Sched::Random;
  env.receiver_sched = Environment::Sched::Random;
  env.delay = Environment::Delay::Random;
  env.seed = seed;
  return env;
}

protocols::ProtocolConfig make_general_config(protocols::ProtocolKind kind,
                                              const GeneralTimingParams& params, std::uint32_t k,
                                              std::vector<ioa::Bit> input) {
  params.validate();
  protocols::ProtocolConfig cfg;
  cfg.params = params.envelope();
  cfg.k = k;
  cfg.input = std::move(input);
  switch (kind) {
    case protocols::ProtocolKind::Beta:
    case protocols::ProtocolKind::Strawman:
      cfg.block_size_override = static_cast<std::uint32_t>(params.beta_block());
      cfg.wait_steps_override = static_cast<std::uint32_t>(params.beta_wait());
      break;
    case protocols::ProtocolKind::Gamma:
    case protocols::ProtocolKind::WindowedGamma:
      cfg.block_size_override = static_cast<std::uint32_t>(params.delta2());
      break;
    case protocols::ProtocolKind::Alpha:
      // α's wait is a pure separation wait; the general model shrinks it to
      // ⌈(d2−d1)/c1^t⌉ steps.
      cfg.params = params.transmitter_params();
      cfg.wait_steps_override = static_cast<std::uint32_t>(params.beta_wait());
      break;
    case protocols::ProtocolKind::AltBit:
    case protocols::ProtocolKind::Indexed:
      cfg.params = params.transmitter_params();  // timing-free protocols
      break;
  }
  return cfg;
}

core::ProtocolRun run_general_protocol(protocols::ProtocolKind kind,
                                       const GeneralTimingParams& params, std::uint32_t k,
                                       std::vector<ioa::Bit> input, const GeneralEnvironment& env,
                                       bool record_trace, std::uint64_t max_events) {
  const protocols::ProtocolConfig cfg = make_general_config(kind, params, k, std::move(input));
  protocols::ProtocolInstance instance = protocols::make_protocol(kind, cfg);

  Rng seeder{env.seed};
  auto t_sched =
      core::make_scheduler(env.transmitter_sched, params.transmitter_params(), seeder.next_u64());
  auto r_sched =
      core::make_scheduler(env.receiver_sched, params.receiver_params(), seeder.next_u64());
  channel::Channel chan{params.d_hi, make_general_policy(env.delay, params, seeder.next_u64()),
                        params.d_lo};

  sim::SimConfig sim_config;
  sim_config.params = params.envelope();
  sim_config.transmitter_params = params.transmitter_params();
  sim_config.receiver_params = params.receiver_params();
  sim_config.record_trace = record_trace;
  sim_config.max_events = max_events;

  sim::Simulator simulator{*instance.transmitter, *instance.receiver, chan, *t_sched, *r_sched,
                           sim_config};
  core::ProtocolRun run;
  run.result = simulator.run();
  run.output_correct = run.result.output == cfg.input;
  return run;
}

core::VerifyResult verify_general_trace(const ioa::TimedTrace& trace,
                                        const GeneralTimingParams& params,
                                        std::span<const ioa::Bit> input, bool require_complete) {
  core::VerifyOptions options;
  options.require_complete = require_complete;
  options.transmitter_params = params.transmitter_params();
  options.receiver_params = params.receiver_params();
  options.min_delay = params.d_lo;
  return core::verify_trace(trace, params.envelope(), input, options);
}

core::EffortMeasurement measure_general_effort(protocols::ProtocolKind kind,
                                               const GeneralTimingParams& params, std::uint32_t k,
                                               std::size_t n, const GeneralEnvironment& env,
                                               std::uint64_t input_seed) {
  const core::ProtocolRun run = run_general_protocol(
      kind, params, k, core::make_random_input(n, input_seed), env, /*record_trace=*/false);
  core::EffortMeasurement m;
  m.n = n;
  m.last_send = run.result.last_transmitter_send;
  m.output_correct = run.output_correct;
  m.quiescent = run.result.quiescent;
  m.transmitter_sends = run.result.transmitter_sends;
  if (n > 0 && m.last_send.has_value()) {
    m.effort =
        static_cast<double>((*m.last_send - Time::zero()).ticks()) / static_cast<double>(n);
  }
  return m;
}

}  // namespace rstp::general
