#include "rstp/general/params.h"

#include <algorithm>
#include <ostream>

#include "rstp/combinatorics/binomial.h"
#include "rstp/common/check.h"

namespace rstp::general {

void GeneralTimingParams::validate() const {
  RSTP_CHECK_GT(t_c1.ticks(), 0, "transmitter c1 must be positive");
  RSTP_CHECK_LE(t_c1.ticks(), t_c2.ticks(), "transmitter needs c1 <= c2");
  RSTP_CHECK_GT(r_c1.ticks(), 0, "receiver c1 must be positive");
  RSTP_CHECK_LE(r_c1.ticks(), r_c2.ticks(), "receiver needs c1 <= c2");
  RSTP_CHECK(!d_lo.is_negative(), "d1 must be non-negative");
  RSTP_CHECK_LE(d_lo.ticks(), d_hi.ticks(), "need d1 <= d2");
  RSTP_CHECK_LE(t_c2.ticks(), d_hi.ticks(), "need transmitter c2 <= d2");
  RSTP_CHECK_LE(r_c2.ticks(), d_hi.ticks(), "need receiver c2 <= d2");
}

GeneralTimingParams GeneralTimingParams::from_base(const core::TimingParams& base) {
  base.validate();
  return GeneralTimingParams{base.c1, base.c2, base.c1, base.c2, Duration{0}, base.d};
}

bool GeneralTimingParams::is_base() const {
  return t_c1 == r_c1 && t_c2 == r_c2 && d_lo == Duration{0};
}

std::int64_t GeneralTimingParams::delta1() const { return d_hi.floor_div(t_c1); }

std::int64_t GeneralTimingParams::beta_block() const { return d_hi.ceil_div(t_c1); }

std::int64_t GeneralTimingParams::beta_wait() const {
  return std::max<std::int64_t>(1, window_width().ceil_div(t_c1));
}

std::int64_t GeneralTimingParams::adversary_delta() const {
  return window_width().floor_div(t_c1);
}

std::int64_t GeneralTimingParams::delta2() const { return d_hi.floor_div(t_c2); }

core::TimingParams GeneralTimingParams::transmitter_params() const {
  return core::TimingParams{t_c1, t_c2, d_hi};
}

core::TimingParams GeneralTimingParams::receiver_params() const {
  return core::TimingParams{r_c1, r_c2, d_hi};
}

core::TimingParams GeneralTimingParams::envelope() const {
  return core::TimingParams{std::min(t_c1, r_c1), std::max(t_c2, r_c2), d_hi};
}

std::ostream& operator<<(std::ostream& os, const GeneralTimingParams& p) {
  return os << "{t:[" << p.t_c1 << "," << p.t_c2 << "] r:[" << p.r_c1 << "," << p.r_c2
            << "] d:[" << p.d_lo << "," << p.d_hi << "]}";
}

GeneralBoundsReport compute_general_bounds(const GeneralTimingParams& params, std::uint32_t k) {
  params.validate();
  RSTP_CHECK_GE(k, 2u, "bounds require a packet alphabet of at least two symbols");

  GeneralBoundsReport r;
  r.params = params;
  r.k = k;
  r.beta_block = params.beta_block();
  r.beta_wait = params.beta_wait();
  r.adversary_delta = params.adversary_delta();
  r.delta2 = params.delta2();

  const auto t_c2 = static_cast<double>(params.t_c2.ticks());
  const auto r_c2 = static_cast<double>(params.r_c2.ticks());
  const auto d2 = static_cast<double>(params.d_hi.ticks());

  r.beta_bits_per_block =
      combinatorics::floor_log2_mu(k, static_cast<std::uint32_t>(r.beta_block));
  r.gamma_bits_per_block =
      combinatorics::floor_log2_mu(k, static_cast<std::uint32_t>(r.delta2));

  // Passive lower bound: the batch adversary needs its window to fit in
  // d2 − d1; with a zero-width window the argument yields no bound.
  if (r.adversary_delta >= 1) {
    r.passive_lower =
        static_cast<double>(r.adversary_delta) * t_c2 /
        combinatorics::log2_zeta(k, static_cast<std::uint32_t>(r.adversary_delta));
  } else {
    r.passive_lower = 0.0;
  }
  r.active_lower = d2 / combinatorics::log2_zeta(k, static_cast<std::uint32_t>(r.delta2));

  r.alpha_effort = static_cast<double>(std::max<std::int64_t>(1, r.beta_wait)) * t_c2;
  r.beta_upper = static_cast<double>(r.beta_block + r.beta_wait) * t_c2 /
                 static_cast<double>(r.beta_bits_per_block);
  // Ack-queueing-aware block period (see the field's comment).
  const double ack_phase =
      std::max(static_cast<double>(r.delta2) * r_c2,
               static_cast<double>(r.delta2 - 1) * t_c2 + r_c2);
  r.gamma_upper =
      (2.0 * d2 + ack_phase + t_c2) / static_cast<double>(r.gamma_bits_per_block);
  return r;
}

std::ostream& operator<<(std::ostream& os, const GeneralBoundsReport& r) {
  os << "general bounds " << r.params << " k=" << r.k << '\n'
     << "  beta_block=" << r.beta_block << " beta_wait=" << r.beta_wait
     << " adversary_delta=" << r.adversary_delta << " delta2=" << r.delta2 << '\n'
     << "  B_beta=" << r.beta_bits_per_block << " B_gamma=" << r.gamma_bits_per_block << '\n'
     << "  passive_lower=" << r.passive_lower << " beta_upper=" << r.beta_upper << '\n'
     << "  active_lower=" << r.active_lower << " gamma_upper=" << r.gamma_upper << '\n'
     << "  alpha_effort=" << r.alpha_effort;
  return os;
}

}  // namespace rstp::general
