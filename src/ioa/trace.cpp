#include "rstp/ioa/trace.h"

#include <ostream>

#include "rstp/common/check.h"

namespace rstp::ioa {

std::ostream& operator<<(std::ostream& os, Actor a) {
  switch (a) {
    case Actor::Transmitter:
      return os << "A_t";
    case Actor::Receiver:
      return os << "A_r";
    case Actor::Channel:
      return os << "C";
  }
  return os << "?";
}

std::ostream& operator<<(std::ostream& os, const TimedEvent& e) {
  return os << e.time << ' ' << e.actor << ": " << e.action;
}

void TimedTrace::append(TimedEvent event) {
  if (!events_.empty()) {
    RSTP_CHECK_LE(events_.back().time, event.time, "trace times must be non-decreasing");
    RSTP_CHECK_LT(events_.back().seq, event.seq, "trace seq numbers must increase");
  }
  events_.push_back(event);
}

std::vector<Bit> TimedTrace::written_messages() const {
  std::vector<Bit> result;
  for (const TimedEvent& e : events_) {
    if (e.action.kind == ActionKind::Write) {
      result.push_back(e.action.message);
    }
  }
  return result;
}

std::optional<Time> TimedTrace::last_send_time(ProcessId sender) const {
  std::optional<Time> last;
  for (const TimedEvent& e : events_) {
    if (e.action.kind == ActionKind::Send && e.action.packet.source() == sender) {
      last = e.time;
    }
  }
  return last;
}

std::size_t TimedTrace::send_count(ProcessId sender) const {
  std::size_t count = 0;
  for (const TimedEvent& e : events_) {
    if (e.action.kind == ActionKind::Send && e.action.packet.source() == sender) {
      ++count;
    }
  }
  return count;
}

std::vector<TimedEvent> TimedTrace::local_events(Actor actor) const {
  std::vector<TimedEvent> result;
  for (const TimedEvent& e : events_) {
    if (e.actor == actor) {
      result.push_back(e);
    }
  }
  return result;
}

std::vector<TimedEvent> TimedTrace::behavior() const {
  std::vector<TimedEvent> result;
  for (const TimedEvent& e : events_) {
    if (e.action.kind != ActionKind::Internal) {
      result.push_back(e);
    }
  }
  return result;
}

std::vector<TimedEvent> TimedTrace::process_view(ProcessId process) const {
  const Actor own = actor_of(process);
  std::vector<TimedEvent> result;
  for (const TimedEvent& e : events_) {
    const bool own_step = e.actor == own;
    const bool incoming = e.action.kind == ActionKind::Recv &&
                          e.action.packet.destination() == process;
    if (own_step || incoming) {
      result.push_back(e);
    }
  }
  return result;
}

Time TimedTrace::end_time() const { return events_.empty() ? Time::zero() : events_.back().time; }

std::ostream& operator<<(std::ostream& os, const TimedTrace& trace) {
  for (const TimedEvent& e : trace.events()) {
    os << e << '\n';
  }
  return os;
}

}  // namespace rstp::ioa
