#include "rstp/ioa/automaton.h"

namespace rstp::ioa {

std::optional<Action> step_local(Automaton& a) {
  std::optional<Action> action = a.enabled_local();
  if (action.has_value()) {
    a.apply(*action);
  }
  return action;
}

}  // namespace rstp::ioa
