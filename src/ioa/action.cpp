#include "rstp/ioa/action.h"

#include <ostream>

namespace rstp::ioa {

std::ostream& operator<<(std::ostream& os, ProcessId p) {
  return os << (p == ProcessId::Transmitter ? "t" : "r");
}

std::ostream& operator<<(std::ostream& os, const Packet& p) {
  const char* dir = p.direction == Packet::Direction::TransmitterToReceiver ? "t→r" : "r→t";
  return os << "pkt(" << dir << ", " << p.payload << ")";
}

std::ostream& operator<<(std::ostream& os, ActionKind k) {
  switch (k) {
    case ActionKind::Send:
      return os << "send";
    case ActionKind::Recv:
      return os << "recv";
    case ActionKind::Write:
      return os << "write";
    case ActionKind::Internal:
      return os << "internal";
  }
  return os << "?";
}

std::ostream& operator<<(std::ostream& os, const Action& a) {
  switch (a.kind) {
    case ActionKind::Send:
      return os << "send(" << a.packet << ")";
    case ActionKind::Recv:
      return os << "recv(" << a.packet << ")";
    case ActionKind::Write:
      return os << "write(" << static_cast<int>(a.message) << ")";
    case ActionKind::Internal:
      if (!a.internal_name.empty()) {
        return os << a.internal_name;
      }
      return os << "internal#" << a.internal_id;
  }
  return os << "?";
}

}  // namespace rstp::ioa
