#include "rstp/ioa/explorer.h"

#include <algorithm>
#include <numeric>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "rstp/common/check.h"

namespace rstp::ioa {

namespace {

/// One in-flight packet with delivery slots relative to "now": the packet
/// may be delivered at any explored instant with 0 ≤ min_in ≤ offset ≤ max_in.
struct Flight {
  Packet packet{};
  std::int64_t min_in = 0;
  std::int64_t max_in = 0;

  friend auto operator<=>(const Flight&, const Flight&) = default;
};

/// Immutable parent-linked event history; prefixes are shared across the
/// search tree so counterexample capture is cheap.
struct EventChain {
  std::shared_ptr<const EventChain> parent;
  Actor actor = Actor::Channel;
  Action action{};
  std::uint64_t instant = 0;
};

std::shared_ptr<const EventChain> extend(std::shared_ptr<const EventChain> parent, Actor actor,
                                         const Action& action, std::uint64_t instant) {
  auto link = std::make_shared<EventChain>();
  link->parent = std::move(parent);
  link->actor = actor;
  link->action = action;
  link->instant = instant;
  return link;
}

TimedTrace chain_to_trace(const std::shared_ptr<const EventChain>& tail) {
  std::vector<const EventChain*> links;
  for (const EventChain* link = tail.get(); link != nullptr; link = link->parent.get()) {
    links.push_back(link);
  }
  TimedTrace trace;
  std::uint64_t seq = 0;
  for (auto it = links.rbegin(); it != links.rend(); ++it) {
    trace.append(TimedEvent{Time{static_cast<std::int64_t>((*it)->instant)}, (*it)->actor,
                            (*it)->action, seq++});
  }
  return trace;
}

struct Node {
  std::unique_ptr<Automaton> t;
  std::unique_ptr<Automaton> r;
  std::vector<Flight> flights;
  std::uint64_t depth = 0;
  std::uint64_t phase = 0;  // depth mod lcm(t_period, r_period)
  std::shared_ptr<const EventChain> history;

  [[nodiscard]] Node clone() const {
    Node copy;
    copy.t = t->clone();
    copy.r = r->clone();
    copy.flights = flights;
    copy.depth = depth;
    copy.phase = phase;
    copy.history = history;
    return copy;
  }

  [[nodiscard]] std::string key() const {
    std::ostringstream os;
    os << phase << '\x1f' << t->snapshot() << '\x1f' << r->snapshot() << '\x1f';
    std::vector<Flight> sorted = flights;
    std::sort(sorted.begin(), sorted.end());
    for (const Flight& f : sorted) {
      os << static_cast<int>(f.packet.direction) << ',' << f.packet.payload << ',' << f.min_in
         << ',' << f.max_in << ';';
    }
    return os.str();
  }
};

/// Enumerates every (subset ⊇ forced, permutation) of `eligible` indices and
/// invokes `visit` with the ordered index sequence. `forced` is a subset of
/// `eligible`.
void for_each_delivery_order(const std::vector<std::size_t>& eligible,
                             const std::vector<bool>& forced,
                             const std::function<void(const std::vector<std::size_t>&)>& visit) {
  const std::size_t e = eligible.size();
  RSTP_CHECK_LE(e, std::size_t{20}, "delivery branching too wide");
  for (std::uint32_t mask = 0; mask < (1u << e); ++mask) {
    bool forced_ok = true;
    for (std::size_t i = 0; i < e; ++i) {
      if (forced[i] && ((mask >> i) & 1u) == 0) {
        forced_ok = false;
        break;
      }
    }
    if (!forced_ok) continue;
    std::vector<std::size_t> chosen;
    for (std::size_t i = 0; i < e; ++i) {
      if ((mask >> i) & 1u) chosen.push_back(eligible[i]);
    }
    std::sort(chosen.begin(), chosen.end());
    do {
      visit(chosen);
    } while (std::next_permutation(chosen.begin(), chosen.end()));
  }
}

}  // namespace

Explorer::Explorer(const Automaton& transmitter, const Automaton& receiver, ExplorerConfig config,
                   Predicate safety, Predicate complete)
    : transmitter_(transmitter),
      receiver_(receiver),
      config_(config),
      safety_(std::move(safety)),
      complete_(std::move(complete)) {
  RSTP_CHECK_GE(config_.d, 0, "delay bound must be non-negative");
  RSTP_CHECK_GE(config_.t_period, 1, "transmitter period must be positive");
  RSTP_CHECK_GE(config_.r_period, 1, "receiver period must be positive");
}

ExplorerResult Explorer::run() {
  ExplorerResult result;
  std::unordered_set<std::string> visited;
  std::vector<Node> stack;
  const std::uint64_t phase_modulus = static_cast<std::uint64_t>(
      std::lcm(config_.t_period, config_.r_period));

  {
    Node root;
    root.t = transmitter_.clone();
    root.r = receiver_.clone();
    stack.push_back(std::move(root));
  }

  const auto check_safety = [&](const Node& node) {
    if (result.safety_held && safety_ && !safety_(*node.t, *node.r)) {
      result.safety_held = false;
      if (result.first_violation.empty()) {
        result.first_violation = "safety violated at: " + node.key();
        result.counterexample = chain_to_trace(node.history);
      }
    }
  };

  while (!stack.empty()) {
    Node node = std::move(stack.back());
    stack.pop_back();

    const std::string key = node.key();
    if (!visited.insert(key).second) continue;
    if (visited.size() > result.distinct_states) result.distinct_states = visited.size();

    check_safety(node);

    if (visited.size() >= config_.max_states || node.depth >= config_.max_depth ||
        node.flights.size() > config_.max_in_flight) {
      result.exhausted_caps = true;
      continue;
    }

    // Terminal: both automata done and nothing in flight.
    const bool t_done = !node.t->enabled_local().has_value() || node.t->quiescent();
    const bool r_done = !node.r->enabled_local().has_value() || node.r->quiescent();
    if (t_done && r_done && node.flights.empty()) {
      ++result.terminal_states;
      if (complete_ && !complete_(*node.t, *node.r)) {
        result.all_terminals_complete = false;
        if (result.first_violation.empty()) {
          result.first_violation = "incomplete terminal: " + key;
          result.counterexample = chain_to_trace(node.history);
        }
      }
      continue;
    }

    // ---- Advance one instant with all delivery branchings -----------------
    // Phase 1: deliveries to the transmitter (before its step).
    std::vector<std::size_t> t_eligible;
    std::vector<bool> t_forced;
    for (std::size_t i = 0; i < node.flights.size(); ++i) {
      const Flight& f = node.flights[i];
      if (f.packet.destination() == ProcessId::Transmitter && f.min_in <= 0) {
        t_eligible.push_back(i);
        // Discrete delivery semantics (matching the simulator's
        // deliveries-before-steps rule): a packet takes effect before the
        // destination's step at some instant ≤ its deadline.
        t_forced.push_back(f.max_in <= 0);
      }
    }

    for_each_delivery_order(t_eligible, t_forced, [&](const std::vector<std::size_t>& t_order) {
      Node mid = node.clone();
      const std::uint64_t instant = node.depth;
      // Deliver the chosen acks, then take the transmitter's step.
      std::vector<bool> consumed(mid.flights.size(), false);
      for (std::size_t idx : t_order) {
        const Action recv = Action::recv(mid.flights[idx].packet);
        mid.t->apply(recv);
        mid.history = extend(mid.history, Actor::Channel, recv, instant);
        consumed[idx] = true;
      }
      std::vector<Packet> t_sent;
      const bool t_steps_now = node.phase % static_cast<std::uint64_t>(config_.t_period) == 0;
      if (t_steps_now) {
        if (const std::optional<Action> a = mid.t->enabled_local(); a.has_value()) {
          mid.t->apply(*a);
          mid.history = extend(mid.history, Actor::Transmitter, *a, instant);
          if (a->kind == ActionKind::Send) t_sent.push_back(a->packet);
        }
      }
      check_safety(mid);

      // Phase 2: deliveries to the receiver — pending packets plus the
      // transmitter's just-sent one (zero-delay same-instant arrival).
      // Older packets may arrive at any point of this instant's window and
      // can be permuted freely; a packet sent THIS instant arrives at
      // exactly this instant, so under the send-order tie rule it can only
      // come after every older same-instant arrival.
      std::vector<Flight> flights2;
      for (std::size_t i = 0; i < mid.flights.size(); ++i) {
        if (!consumed[i]) flights2.push_back(mid.flights[i]);
      }
      const std::size_t fresh_begin = flights2.size();
      for (const Packet& p : t_sent) {
        flights2.push_back(Flight{p, 0, config_.d});
      }
      mid.flights = std::move(flights2);

      std::vector<std::size_t> r_eligible;
      std::vector<bool> r_forced;
      for (std::size_t i = 0; i < fresh_begin; ++i) {
        const Flight& f = mid.flights[i];
        if (f.packet.destination() == ProcessId::Receiver && f.min_in <= 0) {
          r_eligible.push_back(i);
          r_forced.push_back(f.max_in <= 0);
        }
      }
      const bool has_fresh = mid.flights.size() > fresh_begin &&
                             mid.flights[fresh_begin].packet.destination() == ProcessId::Receiver;

      for_each_delivery_order(r_eligible, r_forced, [&](const std::vector<std::size_t>& r_older) {
        // Each older-packet order extends to (a) leave the fresh packet in
        // flight, or (b) deliver it now, strictly after the older ones.
        std::vector<std::vector<std::size_t>> orders;
        orders.push_back(r_older);
        if (has_fresh) {
          std::vector<std::size_t> with_fresh = r_older;
          with_fresh.push_back(fresh_begin);
          orders.push_back(std::move(with_fresh));
        }
        for (const std::vector<std::size_t>& r_order : orders) {
        Node next = mid.clone();
        std::vector<bool> consumed2(next.flights.size(), false);
        for (std::size_t idx : r_order) {
          const Action recv = Action::recv(next.flights[idx].packet);
          next.r->apply(recv);
          next.history = extend(next.history, Actor::Channel, recv, instant);
          consumed2[idx] = true;
        }
        const bool r_steps_now =
            node.phase % static_cast<std::uint64_t>(config_.r_period) == 0;
        if (const std::optional<Action> a =
                r_steps_now ? next.r->enabled_local() : std::nullopt;
            a.has_value()) {
          next.r->apply(*a);
          next.history = extend(next.history, Actor::Receiver, *a, instant);
          if (a->kind == ActionKind::Send) {
            // An ack sent now cannot reach the transmitter before the
            // transmitter's own step this instant: earliest effect-slot 1,
            // physical deadline d instants out.
            next.flights.push_back(Flight{a->packet, 1, config_.d});
            consumed2.push_back(false);
          }
        }
        check_safety(next);

        // Advance to the next instant: drop consumed, shift slots by one.
        std::vector<Flight> remaining;
        for (std::size_t i = 0; i < next.flights.size(); ++i) {
          if (consumed2[i]) continue;
          Flight f = next.flights[i];
          f.min_in = std::max<std::int64_t>(0, f.min_in - 1);
          f.max_in -= 1;
          RSTP_CHECK_GE(f.max_in, 0, "packet missed its delivery deadline");
          remaining.push_back(f);
        }
        next.flights = std::move(remaining);
        next.depth = node.depth + 1;
        next.phase = (node.phase + 1) % phase_modulus;
        ++result.transitions;
        stack.push_back(std::move(next));
        }
      });
    });
  }

  result.distinct_states = visited.size();
  return result;
}

}  // namespace rstp::ioa
