#include "rstp/ioa/trace_io.h"

#include <istream>
#include <ostream>
#include <sstream>

#include "rstp/common/check.h"

namespace rstp::ioa {

namespace {

const char* actor_token(Actor a) {
  switch (a) {
    case Actor::Transmitter:
      return "t";
    case Actor::Receiver:
      return "r";
    case Actor::Channel:
      return "c";
  }
  return "?";
}

Actor parse_actor(const std::string& token) {
  if (token == "t") return Actor::Transmitter;
  if (token == "r") return Actor::Receiver;
  if (token == "c") return Actor::Channel;
  throw ModelError("trace parse: unknown actor '" + token + "'");
}

const char* direction_token(Packet::Direction d) {
  return d == Packet::Direction::TransmitterToReceiver ? "tr" : "rt";
}

Packet::Direction parse_direction(const std::string& token) {
  if (token == "tr") return Packet::Direction::TransmitterToReceiver;
  if (token == "rt") return Packet::Direction::ReceiverToTransmitter;
  throw ModelError("trace parse: unknown direction '" + token + "'");
}

}  // namespace

void write_trace(std::ostream& os, const TimedTrace& trace) {
  os << "# rstp timed trace, " << trace.size() << " events\n";
  for (const TimedEvent& e : trace.events()) {
    os << e.seq << ' ' << e.time.ticks() << ' ' << actor_token(e.actor) << ' ';
    switch (e.action.kind) {
      case ActionKind::Send:
        os << "send " << direction_token(e.action.packet.direction) << ' '
           << e.action.packet.payload;
        break;
      case ActionKind::Recv:
        os << "recv " << direction_token(e.action.packet.direction) << ' '
           << e.action.packet.payload;
        break;
      case ActionKind::Write:
        os << "write " << static_cast<int>(e.action.message);
        break;
      case ActionKind::Internal:
        os << "internal " << e.action.internal_id;
        if (!e.action.internal_name.empty()) {
          os << ' ' << e.action.internal_name;
        }
        break;
    }
    os << '\n';
  }
}

std::string trace_to_string(const TimedTrace& trace) {
  std::ostringstream os;
  write_trace(os, trace);
  return os.str();
}

TimedTrace parse_trace(std::istream& is) {
  TimedTrace trace;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields{line};
    std::uint64_t seq = 0;
    std::int64_t time_ticks = 0;
    std::string actor_text;
    std::string kind;
    if (!(fields >> seq >> time_ticks >> actor_text >> kind)) {
      throw ModelError("trace parse: malformed line " + std::to_string(line_number));
    }
    TimedEvent event;
    event.seq = seq;
    event.time = Time{time_ticks};
    event.actor = parse_actor(actor_text);
    if (kind == "send" || kind == "recv") {
      std::string dir;
      std::uint32_t payload = 0;
      if (!(fields >> dir >> payload)) {
        throw ModelError("trace parse: malformed packet on line " + std::to_string(line_number));
      }
      const Packet packet{parse_direction(dir), payload};
      event.action = kind == "send" ? Action::send(packet) : Action::recv(packet);
    } else if (kind == "write") {
      int bit = 0;
      if (!(fields >> bit) || (bit != 0 && bit != 1)) {
        throw ModelError("trace parse: malformed write on line " + std::to_string(line_number));
      }
      event.action = Action::write(static_cast<Bit>(bit));
    } else if (kind == "internal") {
      std::uint16_t id = 0;
      if (!(fields >> id)) {
        throw ModelError("trace parse: malformed internal on line " +
                         std::to_string(line_number));
      }
      // The optional trailing name is debug-only; identity is the id.
      event.action = Action::internal(id, {});
    } else {
      throw ModelError("trace parse: unknown action kind '" + kind + "' on line " +
                       std::to_string(line_number));
    }
    try {
      trace.append(event);
    } catch (const ContractViolation&) {
      throw ModelError("trace parse: non-monotone event order at line " +
                       std::to_string(line_number));
    }
  }
  return trace;
}

TimedTrace parse_trace_string(const std::string& text) {
  std::istringstream is{text};
  return parse_trace(is);
}

}  // namespace rstp::ioa
