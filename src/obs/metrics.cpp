#include "rstp/obs/metrics.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "rstp/common/check.h"
#include "rstp/obs/trace.h"

namespace rstp::obs {

std::size_t nearest_rank_bucket(const std::uint64_t* buckets, std::size_t size,
                                std::uint64_t count, double p) {
  if (count == 0 || size == 0) return 0;
  const double clamped = std::clamp(p, 0.0, 100.0);
  auto rank = static_cast<std::uint64_t>(
      std::ceil(clamped / 100.0 * static_cast<double>(count)));
  rank = std::max<std::uint64_t>(1, std::min(rank, count));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < size; ++i) {
    seen += buckets[i];
    if (seen >= rank) return i;
  }
  // Reachable only when count > Σ buckets: the dashboard folds its relaxed
  // atomics without a snapshot, so the count can lead the buckets by a few
  // in-flight increments. Clamp to the last bucket — never past the array.
  return size - 1;
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::int64_t lo, std::int64_t hi, std::size_t max_buckets) : lo_(lo) {
  RSTP_CHECK_LE(lo, hi, "histogram window requires lo <= hi");
  RSTP_CHECK_GE(max_buckets, std::size_t{1}, "histogram needs at least one bucket");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  const auto cap = static_cast<std::uint64_t>(max_buckets);
  width_ = static_cast<std::int64_t>((span + cap - 1) / cap);
  const std::uint64_t buckets = (span + static_cast<std::uint64_t>(width_) - 1) /
                                static_cast<std::uint64_t>(width_);
  buckets_.assign(static_cast<std::size_t>(buckets), 0);
}

Histogram Histogram::from_parts(std::int64_t lo, std::int64_t width,
                                std::vector<std::uint64_t> buckets, std::uint64_t count,
                                std::int64_t sum, std::int64_t min, std::int64_t max) {
  RSTP_CHECK_GE(width, std::int64_t{1}, "histogram bucket width must be positive");
  RSTP_CHECK(!buckets.empty(), "histogram parts need at least one bucket");
  std::uint64_t total = 0;
  for (const std::uint64_t b : buckets) total += b;
  RSTP_CHECK_EQ(total, count, "histogram bucket counts must sum to count");
  if (count > 0) {
    RSTP_CHECK_LE(min, max, "histogram parts require min <= max");
  }
  Histogram h;
  h.lo_ = lo;
  h.width_ = width;
  h.buckets_ = std::move(buckets);
  h.count_ = count;
  h.sum_ = sum;
  h.min_ = count == 0 ? 0 : min;
  h.max_ = count == 0 ? 0 : max;
  return h;
}

double Histogram::mean() const {
  if (count_ == 0) return 0;
  return static_cast<double>(sum_) / static_cast<double>(count_);
}

std::int64_t Histogram::percentile(double p) const {
  RSTP_CHECK(p >= 0.0 && p <= 100.0, "percentile requires p in [0, 100]");
  if (count_ == 0) return 0;
  const std::size_t i = nearest_rank_bucket(buckets_.data(), buckets_.size(), count_, p);
  // Report the bucket's upper edge, clamped to the observed extremes so
  // width-1 buckets are exact and wide buckets never overshoot max().
  const std::int64_t edge = lo_ + static_cast<std::int64_t>(i + 1) * width_ - 1;
  return std::clamp(edge, min_, max_);
}

void Histogram::merge(const Histogram& other) {
  RSTP_CHECK(configured() && other.configured(), "merge requires configured histograms");
  RSTP_CHECK(lo_ == other.lo_ && width_ == other.width_ &&
                 buckets_.size() == other.buckets_.size(),
             "histogram merge requires an identical bucket layout");
  if (other.count_ == 0) return;
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  sum_ += other.sum_;
  count_ += other.count_;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    buckets_[i] += other.buckets_[i];
  }
}

// ---------------------------------------------------------------------------
// MetricsRegistry

struct MetricsRegistry::Shard {
  std::array<std::atomic<std::uint64_t>, MetricsRegistry::kMaxMetrics> slots{};
};

namespace {

std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// This thread's shard cache: (registry id, shard). Registry ids are never
/// reused, so a stale entry for a destroyed registry can never be mistaken
/// for a live one. Registries per process are few; linear scan wins.
struct TlsEntry {
  std::uint64_t registry_id;
  void* shard;
};

thread_local std::vector<TlsEntry> tls_shards;

}  // namespace

MetricsRegistry::MetricsRegistry() : registry_id_(next_registry_id()) {}

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::MetricId MetricsRegistry::counter(std::string_view name) {
  const std::scoped_lock lock{mutex_};
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      RSTP_CHECK(!is_gauge_[i], "metric already registered as a gauge");
      return i;
    }
  }
  RSTP_CHECK_LT(names_.size(), kMaxMetrics, "metrics registry is full");
  names_.emplace_back(name);
  is_gauge_.push_back(false);
  return names_.size() - 1;
}

MetricsRegistry::MetricId MetricsRegistry::gauge(std::string_view name) {
  const std::scoped_lock lock{mutex_};
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) {
      RSTP_CHECK(is_gauge_[i], "metric already registered as a counter");
      return i;
    }
  }
  RSTP_CHECK_LT(names_.size(), kMaxMetrics, "metrics registry is full");
  names_.emplace_back(name);
  is_gauge_.push_back(true);
  return names_.size() - 1;
}

MetricsRegistry::Shard& MetricsRegistry::shard_for_this_thread() {
  for (const TlsEntry& entry : tls_shards) {
    if (entry.registry_id == registry_id_) {
      return *static_cast<Shard*>(entry.shard);
    }
  }
  const std::scoped_lock lock{mutex_};
  shards_.push_back(std::make_unique<Shard>());
  Shard& shard = *shards_.back();
  tls_shards.push_back(TlsEntry{registry_id_, &shard});
  return shard;
}

std::atomic<std::uint64_t>* MetricsRegistry::thread_slots() {
  return shard_for_this_thread().slots.data();
}

void MetricsRegistry::add(MetricId id, std::uint64_t delta) {
  RSTP_CHECK_LT(id, kMaxMetrics, "metric id out of range");
  Shard& shard = shard_for_this_thread();
  shard.slots[id].fetch_add(delta, std::memory_order_relaxed);
}

void MetricsRegistry::gauge_max(MetricId id, std::uint64_t value) {
  RSTP_CHECK_LT(id, kMaxMetrics, "metric id out of range");
  Shard& shard = shard_for_this_thread();
  std::atomic<std::uint64_t>& slot = shard.slots[id];
  // The shard has a single writer (this thread); the atomic type exists for
  // the collector's concurrent reads, so a plain load/store max suffices.
  if (value > slot.load(std::memory_order_relaxed)) {
    slot.store(value, std::memory_order_relaxed);
  }
}

std::vector<MetricsRegistry::Sample> MetricsRegistry::collect() const {
  const std::scoped_lock lock{mutex_};
  std::vector<Sample> out;
  out.reserve(names_.size());
  for (std::size_t i = 0; i < names_.size(); ++i) {
    Sample sample;
    sample.name = names_[i];
    sample.is_gauge = is_gauge_[i];
    for (const auto& shard : shards_) {
      const std::uint64_t v = shard->slots[i].load(std::memory_order_relaxed);
      sample.value = sample.is_gauge ? std::max(sample.value, v) : sample.value + v;
    }
    out.push_back(std::move(sample));
  }
  return out;
}

std::uint64_t MetricsRegistry::value(MetricId id) const {
  const std::scoped_lock lock{mutex_};
  RSTP_CHECK_LT(id, names_.size(), "metric id out of range");
  std::uint64_t merged = 0;
  for (const auto& shard : shards_) {
    const std::uint64_t v = shard->slots[id].load(std::memory_order_relaxed);
    merged = is_gauge_[id] ? std::max(merged, v) : merged + v;
  }
  return merged;
}

void MetricsRegistry::reset() {
  const std::scoped_lock lock{mutex_};
  for (const auto& shard : shards_) {
    for (auto& slot : shard->slots) {
      slot.store(0, std::memory_order_relaxed);
    }
  }
}

MetricsRegistry& global_registry() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

// ---------------------------------------------------------------------------
// Phase timers

std::string_view to_string(Phase phase) {
  switch (phase) {
    case Phase::CodecRank:
      return "codec_rank";
    case Phase::CodecUnrank:
      return "codec_unrank";
    case Phase::ChannelPop:
      return "channel_pop";
    case Phase::SimStep:
      return "sim_step";
    case Phase::ProtoEnabled:
      return "proto_enabled";
    case Phase::ProtoApply:
      return "proto_apply";
    case Phase::ProtoRecv:
      return "proto_recv";
    case Phase::SchedGap:
      return "sched_gap";
    case Phase::RecordEvent:
      return "record_event";
    case Phase::Deliver:
      return "deliver";
    case Phase::ChannelPush:
      return "channel_push";
    case Phase::StepAccount:
      return "step_account";
  }
  RSTP_UNREACHABLE("unknown phase");
}

namespace detail {

std::atomic<bool> phase_timing_flag{false};

}  // namespace detail

namespace {

struct PhaseIds {
  MetricsRegistry::MetricId calls[kPhaseCount];
  MetricsRegistry::MetricId nanos[kPhaseCount];
};

const PhaseIds& phase_ids() {
  static const PhaseIds ids = [] {
    PhaseIds out;
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      const std::string_view name = to_string(static_cast<Phase>(i));
      out.calls[i] = global_registry().counter("phase/" + std::string{name} + "/calls");
      out.nanos[i] = global_registry().counter("phase/" + std::string{name} + "/ns");
    }
    return out;
  }();
  return ids;
}

/// Lazily registered ids for the parent→child edge counters. Only realized
/// edges register (a dense matrix of all pairs would crowd the registry for
/// names that can never occur). Registration is idempotent, so the benign
/// race — two threads hitting a fresh edge — resolves to the same id.
constexpr std::size_t kEdgeUnregistered = ~std::size_t{0};

struct EdgeIds {
  std::atomic<std::size_t> calls{kEdgeUnregistered};
  std::atomic<std::size_t> nanos{kEdgeUnregistered};
};

EdgeIds edge_ids[kPhaseCount][kPhaseCount];

std::string edge_metric_name(Phase parent, Phase child, std::string_view leaf) {
  std::string name = "phase/";
  name += to_string(parent);
  name += '/';
  name += to_string(child);
  name += '/';
  name += leaf;
  return name;
}

MetricsRegistry::MetricId edge_metric(std::atomic<std::size_t>& slot, Phase parent,
                                      Phase child, std::string_view leaf) {
  std::size_t id = slot.load(std::memory_order_relaxed);
  if (id == kEdgeUnregistered) {
    id = global_registry().counter(edge_metric_name(parent, child, leaf));
    slot.store(id, std::memory_order_relaxed);
  }
  return id;
}

/// The per-thread stack of active (armed) phases. Depth can exceed the frame
/// capacity without corruption — frames beyond it are simply not attributed.
constexpr std::size_t kMaxPhaseDepth = 16;

struct PhaseStack {
  Phase frames[kMaxPhaseDepth];
  std::size_t depth = 0;
};

thread_local PhaseStack phase_stack;

}  // namespace

namespace detail {

void phase_push(Phase phase) {
  PhaseStack& stack = phase_stack;
  // Depth saturates against the frame array but keeps counting: frames past
  // kMaxPhaseDepth are dropped (their exits read as top-level), never written
  // out of bounds.
  if (stack.depth < kMaxPhaseDepth) stack.frames[stack.depth] = phase;
  ++stack.depth;
}

void phase_exit(Phase phase, std::uint64_t start_ns) {
  PhaseStack& stack = phase_stack;
  // Tolerates an empty stack (depth pins at 0 and the frame read below is
  // guarded out), so a hook firing outside any ScopedPhaseTimer — or an
  // unmatched exit from a moved-from timer — records as a top-level span
  // instead of reading frames[-1]. obs_metrics_test pins this.
  if (stack.depth > 0) --stack.depth;
  const PhaseIds& ids = phase_ids();
  const auto i = static_cast<std::size_t>(phase);
  // The raw "phase/<name>/ns" slot holds *top-level* time only; nested time
  // goes to the parent/child edge slot instead, and collect_phase_totals()
  // reconstructs the flat total as top-level + incoming edges. Splitting the
  // storage this way leaves exactly one relaxed add after the clock read
  // below, so per-timer cost outside the measured interval — the only
  // instrumentation cost a parent's self time can ever absorb — is a few
  // nanoseconds. Everything before the read (shard lookup, call counters,
  // edge-id resolution) is charged to this phase itself.
  std::atomic<std::uint64_t>* slots = global_registry().thread_slots();
  slots[ids.calls[i]].fetch_add(1, std::memory_order_relaxed);
  std::atomic<std::uint64_t>* nanos_slot = &slots[ids.nanos[i]];
  if (stack.depth > 0 && stack.depth <= kMaxPhaseDepth) {
    const Phase parent = stack.frames[stack.depth - 1];
    EdgeIds& edge = edge_ids[static_cast<std::size_t>(parent)][i];
    slots[edge_metric(edge.calls, parent, phase, "calls")].fetch_add(
        1, std::memory_order_relaxed);
    nanos_slot = &slots[edge_metric(edge.nanos, parent, phase, "ns")];
  }
  const std::uint64_t end_ns = phase_now_ns();
  nanos_slot->fetch_add(end_ns - start_ns, std::memory_order_relaxed);
  // Host profiling spans for the tracer: one relaxed load when no tracer is
  // attached (and this path only runs with timing enabled in the first
  // place). Checked after the final clock read so the span cost lands in the
  // enclosing phase's self time rather than skewing this phase's total.
  if (trace::detail::host_sink.load(std::memory_order_relaxed) != nullptr) {
    trace::detail::record_host_span(phase, start_ns, end_ns);
  }
}

}  // namespace detail

void set_phase_timing_enabled(bool enabled) {
  if (enabled) {
    calibrate_host_clock();  // timestamps come from the TSC when available
    (void)phase_ids();  // register the counters before the hot path needs them
  }
  detail::phase_timing_flag.store(enabled, std::memory_order_relaxed);
}

bool phase_timing_enabled() {
  return detail::phase_timing_flag.load(std::memory_order_relaxed);
}

std::vector<PhaseTotal> collect_phase_totals() {
  const PhaseIds& ids = phase_ids();
  std::vector<PhaseTotal> out;
  out.reserve(kPhaseCount);
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    PhaseTotal total;
    total.phase = static_cast<Phase>(i);
    total.calls = global_registry().value(ids.calls[i]);
    total.nanos = global_registry().value(ids.nanos[i]);
    out.push_back(total);
  }
  // The raw slot keeps only top-level time (see phase_exit); fold the
  // incoming edges back in so a PhaseTotal reports the same all-elapsed
  // quantity the pre-nesting four-phase layout did.
  for (const PhaseEdgeTotal& edge : collect_phase_edge_totals()) {
    out[static_cast<std::size_t>(edge.child)].nanos += edge.nanos;
  }
  return out;
}

std::vector<PhaseEdgeTotal> collect_phase_edge_totals() {
  std::vector<PhaseEdgeTotal> out;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    for (std::size_t c = 0; c < kPhaseCount; ++c) {
      const EdgeIds& edge = edge_ids[p][c];
      const std::size_t calls_id = edge.calls.load(std::memory_order_relaxed);
      const std::size_t nanos_id = edge.nanos.load(std::memory_order_relaxed);
      if (calls_id == kEdgeUnregistered || nanos_id == kEdgeUnregistered) continue;
      PhaseEdgeTotal total;
      total.parent = static_cast<Phase>(p);
      total.child = static_cast<Phase>(c);
      total.calls = global_registry().value(calls_id);
      total.nanos = global_registry().value(nanos_id);
      if (total.calls == 0) continue;
      out.push_back(total);
    }
  }
  return out;
}

namespace {

/// Last measured timer-pair overhead; plain global so it survives registry
/// resets (the gauge is re-published after each reset).
std::atomic<std::uint64_t> measured_overhead_ns{0};

void publish_overhead_gauge() {
  const std::uint64_t v = measured_overhead_ns.load(std::memory_order_relaxed);
  if (v == 0) return;
  global_registry().gauge_max(global_registry().gauge("phase/_overhead/ns_per_pair"), v);
}

}  // namespace

std::uint64_t measure_phase_overhead_ns_per_pair() {
  const bool was_enabled = phase_timing_enabled();
  if (!was_enabled) set_phase_timing_enabled(true);
  // Empty timer pairs back to back: each iteration pays exactly the
  // enter/exit machinery. Min of several trial means filters preemption and
  // one-time costs (shard registration, edge-id resolution).
  constexpr std::uint64_t kIters = 16 * 1024;
  constexpr int kTrials = 8;
  std::uint64_t best = ~std::uint64_t{0};
  for (int trial = 0; trial < kTrials; ++trial) {
    const std::uint64_t t0 = host_now_ns();
    for (std::uint64_t i = 0; i < kIters; ++i) {
      const ScopedPhaseTimer timer{Phase::StepAccount};
    }
    const std::uint64_t t1 = host_now_ns();
    best = std::min(best, (t1 - t0) / kIters);
  }
  if (!was_enabled) set_phase_timing_enabled(false);
  measured_overhead_ns.store(std::max<std::uint64_t>(1, best), std::memory_order_relaxed);
  publish_overhead_gauge();
  return measured_overhead_ns.load(std::memory_order_relaxed);
}

std::uint64_t phase_overhead_ns_per_pair() {
  return measured_overhead_ns.load(std::memory_order_relaxed);
}

void reset_phase_totals() {
  global_registry().reset();
  publish_overhead_gauge();  // the measured floor survives a counter reset
}

}  // namespace rstp::obs
