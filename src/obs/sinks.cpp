#include "rstp/obs/sinks.h"

#include <algorithm>
#include <charconv>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "rstp/common/check.h"
#include "rstp/obs/json.h"

namespace rstp::obs {

namespace {

constexpr std::string_view kSchema = "rstp-run-metrics-v1";

void write_histogram(std::ostream& os, const Histogram& h) {
  if (!h.configured()) {
    os << "null";
    return;
  }
  os << "{\"lo\":" << h.lower_bound() << ",\"width\":" << h.bucket_width()
     << ",\"count\":" << h.count() << ",\"sum\":" << h.sum() << ",\"min\":" << h.min()
     << ",\"max\":" << h.max() << ",\"p50\":" << h.percentile(50)
     << ",\"p95\":" << h.percentile(95) << ",\"p99\":" << h.percentile(99) << ",\"buckets\":[";
  for (std::size_t i = 0; i < h.bucket_count(); ++i) {
    if (i > 0) os << ',';
    os << h.bucket(i);
  }
  os << "]}";
}

Histogram parse_histogram(const JsonValue* v) {
  if (v == nullptr || v->kind == JsonValue::Kind::Null) return Histogram{};
  if (!v->is_object()) throw JsonParseError("histogram must be an object or null");
  const JsonValue* buckets = v->find("buckets");
  if (buckets == nullptr || buckets->kind != JsonValue::Kind::Array) {
    throw JsonParseError("histogram is missing its buckets array");
  }
  std::vector<std::uint64_t> counts;
  counts.reserve(buckets->items.size());
  for (const JsonValue& item : buckets->items) counts.push_back(item.to_u64());
  return Histogram::from_parts(v->i64_or("lo", 0), v->i64_or("width", 1), std::move(counts),
                               v->u64_or("count", 0), v->i64_or("sum", 0), v->i64_or("min", 0),
                               v->i64_or("max", 0));
}

RunCounters parse_counters(const JsonValue& line) {
  const JsonValue* v = line.find("counters");
  if (v == nullptr || !v->is_object()) {
    throw JsonParseError("record is missing its counters object");
  }
  RunCounters c;
  c.events = v->u64_or("events", 0);
  c.data_sends = v->u64_or("data_sends", 0);
  c.ack_sends = v->u64_or("ack_sends", 0);
  c.data_recvs = v->u64_or("data_recvs", 0);
  c.ack_recvs = v->u64_or("ack_recvs", 0);
  c.dropped = v->u64_or("dropped", 0);
  c.writes = v->u64_or("writes", 0);
  c.transmitter_steps = v->u64_or("transmitter_steps", 0);
  c.receiver_steps = v->u64_or("receiver_steps", 0);
  c.transmitter_internal_steps = v->u64_or("transmitter_internal_steps", 0);
  c.receiver_internal_steps = v->u64_or("receiver_internal_steps", 0);
  c.protocol.blocks_encoded = v->u64_or("blocks_encoded", 0);
  c.protocol.blocks_decoded = v->u64_or("blocks_decoded", 0);
  c.protocol.acks_sent = v->u64_or("acks_sent", 0);
  c.protocol.acks_observed = v->u64_or("acks_observed", 0);
  c.protocol.retransmissions = v->u64_or("retransmissions", 0);
  return c;
}

}  // namespace

void write_run_metrics_jsonl(std::ostream& os, const RunMetricsRecord& record) {
  const RunCounters& c = record.metrics.counters;
  os << "{\"schema\":" << json_quote(kSchema)
     << ",\"protocol\":" << json_quote(record.protocol) << ",\"c1\":" << record.c1
     << ",\"c2\":" << record.c2 << ",\"d\":" << record.d << ",\"k\":" << record.k
     << ",\"input_bits\":" << record.input_bits << ",\"seed\":" << record.seed
     << ",\"effort\":" << json_number(record.effort)
     << ",\"gap_ratio\":" << json_number(record.gap_ratio)
     << ",\"est_penalty\":" << json_number(record.est_penalty)
     << ",\"est\":{\"c1_hat\":" << record.est.c1_hat << ",\"c2_hat\":" << record.est.c2_hat
     << ",\"d_hat\":" << record.est.d_hat << ",\"gap_samples\":" << record.est.gap_samples
     << ",\"delay_samples\":" << record.est.delay_samples
     << ",\"resizes\":" << record.est.resizes << "}"
     << ",\"sessions\":" << record.sessions
     << ",\"events_per_sec\":" << json_number(record.events_per_sec)
     << ",\"end_time\":" << record.end_time
     << ",\"correct\":" << (record.correct ? "true" : "false")
     << ",\"quiescent\":" << (record.quiescent ? "true" : "false") << ",\"counters\":{"
     << "\"events\":" << c.events << ",\"data_sends\":" << c.data_sends
     << ",\"ack_sends\":" << c.ack_sends << ",\"data_recvs\":" << c.data_recvs
     << ",\"ack_recvs\":" << c.ack_recvs << ",\"dropped\":" << c.dropped
     << ",\"writes\":" << c.writes << ",\"transmitter_steps\":" << c.transmitter_steps
     << ",\"receiver_steps\":" << c.receiver_steps
     << ",\"transmitter_internal_steps\":" << c.transmitter_internal_steps
     << ",\"receiver_internal_steps\":" << c.receiver_internal_steps
     << ",\"blocks_encoded\":" << c.protocol.blocks_encoded
     << ",\"blocks_decoded\":" << c.protocol.blocks_decoded
     << ",\"acks_sent\":" << c.protocol.acks_sent
     << ",\"acks_observed\":" << c.protocol.acks_observed
     << ",\"retransmissions\":" << c.protocol.retransmissions << "},\"hist\":{";
  os << "\"data_delay\":";
  write_histogram(os, record.metrics.data_delay);
  os << ",\"ack_delay\":";
  write_histogram(os, record.metrics.ack_delay);
  os << ",\"transmitter_gap\":";
  write_histogram(os, record.metrics.transmitter_gap);
  os << ",\"receiver_gap\":";
  write_histogram(os, record.metrics.receiver_gap);
  os << "}}\n";
}

std::vector<RunMetricsRecord> read_run_metrics_jsonl(std::istream& is) {
  std::vector<RunMetricsRecord> out;
  std::string line;
  std::size_t line_number = 0;
  while (std::getline(is, line)) {
    ++line_number;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      const JsonValue doc = parse_json(line);
      if (!doc.is_object()) throw JsonParseError("line is not a JSON object");
      const std::string schema = doc.string_or("schema", "");
      if (schema != kSchema) {
        throw JsonParseError("unsupported schema '" + schema + "' (want '" +
                             std::string{kSchema} + "')");
      }
      RunMetricsRecord record;
      record.protocol = doc.string_or("protocol", "?");
      record.c1 = doc.i64_or("c1", 0);
      record.c2 = doc.i64_or("c2", 0);
      record.d = doc.i64_or("d", 0);
      record.k = static_cast<std::uint32_t>(doc.u64_or("k", 2));
      record.input_bits = doc.u64_or("input_bits", 0);
      record.seed = doc.u64_or("seed", 0);
      record.effort = doc.number_or("effort", 0);
      // Absent in pre-adversary baselines; defaulting keeps them parseable.
      record.gap_ratio = doc.number_or("gap_ratio", 0);
      // Same back-compat contract for the estimator fields.
      record.est_penalty = doc.number_or("est_penalty", 0);
      const JsonValue* est = doc.find("est");
      if (est != nullptr && est->is_object()) {
        record.est.c1_hat = est->i64_or("c1_hat", 0);
        record.est.c2_hat = est->i64_or("c2_hat", 0);
        record.est.d_hat = est->i64_or("d_hat", 0);
        record.est.gap_samples = est->u64_or("gap_samples", 0);
        record.est.delay_samples = est->u64_or("delay_samples", 0);
        record.est.resizes = est->u64_or("resizes", 0);
      }
      // Multiplexed-run fields, absent before the megasession engine.
      record.sessions = doc.u64_or("sessions", 0);
      record.events_per_sec = doc.number_or("events_per_sec", 0);
      record.end_time = doc.i64_or("end_time", 0);
      record.correct = doc.bool_or("correct", false);
      record.quiescent = doc.bool_or("quiescent", false);
      record.metrics.counters = parse_counters(doc);
      const JsonValue* hist = doc.find("hist");
      if (hist != nullptr && hist->is_object()) {
        record.metrics.data_delay = parse_histogram(hist->find("data_delay"));
        record.metrics.ack_delay = parse_histogram(hist->find("ack_delay"));
        record.metrics.transmitter_gap = parse_histogram(hist->find("transmitter_gap"));
        record.metrics.receiver_gap = parse_histogram(hist->find("receiver_gap"));
      }
      out.push_back(std::move(record));
    } catch (const JsonParseError& e) {
      throw JsonParseError("line " + std::to_string(line_number) + ": " + e.what());
    }
  }
  return out;
}

void print_metrics_table(std::ostream& os, const std::vector<RunMetricsRecord>& records) {
  os << std::left << std::setw(10) << "protocol" << std::right << std::setw(4) << "c1"
     << std::setw(5) << "c2" << std::setw(6) << "d" << std::setw(4) << "k" << std::setw(6)
     << "bits" << std::setw(9) << "effort" << std::setw(9) << "d.sends" << std::setw(9)
     << "a.sends" << std::setw(7) << "drops" << std::setw(8) << "writes" << std::setw(6)
     << "p50" << std::setw(6) << "p95" << std::setw(6) << "p99" << std::setw(5) << "ok"
     << std::setw(7) << "quiet" << '\n';
  RunCounters totals;
  for (const RunMetricsRecord& r : records) {
    const RunCounters& c = r.metrics.counters;
    totals += c;
    const Histogram& delay = r.metrics.data_delay;
    os << std::left << std::setw(10) << r.protocol << std::right << std::setw(4) << r.c1
       << std::setw(5) << r.c2 << std::setw(6) << r.d << std::setw(4) << r.k << std::setw(6)
       << r.input_bits << std::setw(9) << std::fixed << std::setprecision(2) << r.effort
       << std::setw(9) << c.data_sends << std::setw(9) << c.ack_sends << std::setw(7)
       << c.dropped << std::setw(8) << c.writes;
    if (delay.configured() && delay.count() > 0) {
      os << std::setw(6) << delay.percentile(50) << std::setw(6) << delay.percentile(95)
         << std::setw(6) << delay.percentile(99);
    } else {
      os << std::setw(6) << "-" << std::setw(6) << "-" << std::setw(6) << "-";
    }
    os << std::setw(5) << (r.correct ? "yes" : "NO") << std::setw(7)
       << (r.quiescent ? "yes" : "NO") << '\n';
  }
  os << "runs: " << records.size() << "  events: " << totals.events
     << "  data sends: " << totals.data_sends << "  ack sends: " << totals.ack_sends
     << "  drops: " << totals.dropped << "  writes: " << totals.writes
     << "  blocks enc/dec: " << totals.protocol.blocks_encoded << "/"
     << totals.protocol.blocks_decoded << "  acks sent/observed: " << totals.protocol.acks_sent
     << "/" << totals.protocol.acks_observed << '\n';
}

namespace {

/// Per-phase view of the edge matrix used by the tree printer.
struct PhaseNode {
  std::uint64_t flat_calls = 0;
  std::uint64_t flat_nanos = 0;
  std::uint64_t incoming_nanos = 0;  ///< sum over edges where this is the child
  std::size_t incoming_edges = 0;
  std::vector<const PhaseEdgeTotal*> children;  ///< edges where this is the parent
};

void print_tree_node(std::ostream& os, const std::vector<PhaseNode>& nodes, Phase phase,
                     std::uint64_t nanos, std::uint64_t parent_nanos, int depth,
                     std::string_view suffix) {
  const double us = static_cast<double>(nanos) / 1000.0;
  os << "  ";
  for (int i = 0; i < depth; ++i) os << "  ";
  std::ostringstream label;
  label << to_string(phase) << suffix;
  os << std::left << std::setw(std::max(2, 30 - 2 * depth)) << label.str() << std::right
     << std::setw(12) << std::fixed << std::setprecision(1) << us << "us";
  if (parent_nanos > 0) {
    os << std::setw(7) << std::setprecision(1)
       << 100.0 * static_cast<double>(nanos) / static_cast<double>(parent_nanos) << "%";
  }
  os << '\n';
  const PhaseNode& node = nodes[static_cast<std::size_t>(phase)];
  // Recursing below an edge is exact only when every call of this phase ran
  // under the same parent; a shared child's own breakdown would mix its
  // contexts, so stop there (its full subtree appears where it is a root or
  // its flat total in the phase table).
  if (node.children.empty()) return;
  const bool shown_in_full = nanos == node.flat_nanos;
  if (!shown_in_full && node.incoming_edges > 1) return;
  std::uint64_t attributed = 0;
  for (const PhaseEdgeTotal* edge : node.children) {
    print_tree_node(os, nodes, edge->child, edge->nanos, nanos, depth + 1, "");
    attributed += edge->nanos;
  }
  if (attributed < nanos) {
    const double self_us = static_cast<double>(nanos - attributed) / 1000.0;
    os << "  ";
    for (int i = 0; i <= depth; ++i) os << "  ";
    os << std::left << std::setw(std::max(2, 30 - 2 * (depth + 1))) << "(self)" << std::right
       << std::setw(12) << std::fixed << std::setprecision(1) << self_us << "us"
       << std::setw(7) << std::setprecision(1)
       << 100.0 * static_cast<double>(nanos - attributed) / static_cast<double>(nanos) << "%\n";
  }
}

}  // namespace

void print_phase_tree(std::ostream& os, const std::vector<PhaseTotal>& totals,
                      const std::vector<PhaseEdgeTotal>& edges) {
  std::vector<PhaseNode> nodes(kPhaseCount);
  for (const PhaseTotal& t : totals) {
    PhaseNode& node = nodes[static_cast<std::size_t>(t.phase)];
    node.flat_calls = t.calls;
    node.flat_nanos = t.nanos;
  }
  for (const PhaseEdgeTotal& e : edges) {
    nodes[static_cast<std::size_t>(e.parent)].children.push_back(&e);
    PhaseNode& child = nodes[static_cast<std::size_t>(e.child)];
    child.incoming_nanos += e.nanos;
    ++child.incoming_edges;
  }
  os << "phase tree (parent -> child attribution):\n";
  for (std::size_t i = 0; i < kPhaseCount; ++i) {
    const PhaseNode& node = nodes[i];
    if (node.flat_calls == 0) continue;
    const Phase phase = static_cast<Phase>(i);
    if (node.incoming_edges == 0) {
      print_tree_node(os, nodes, phase, node.flat_nanos, 0, 0, "");
    } else if (node.flat_nanos > node.incoming_nanos) {
      // A phase can occur both nested and at top level (scheduler gaps run
      // under sim steps and once per process before the run starts); the
      // residual is its top-level share.
      print_tree_node(os, nodes, phase, node.flat_nanos - node.incoming_nanos, 0, 0,
                      " (top-level)");
    }
  }
}

void print_phase_table(std::ostream& os, const std::vector<PhaseTotal>& totals,
                       std::uint64_t overhead_ns_per_pair) {
  os << std::left << std::setw(14) << "phase" << std::right << std::setw(12) << "calls"
     << std::setw(14) << "total_us" << std::setw(12) << "mean_ns";
  if (overhead_ns_per_pair > 0) os << std::setw(12) << "net_ns";
  os << '\n';
  for (const PhaseTotal& t : totals) {
    const double total_us = static_cast<double>(t.nanos) / 1000.0;
    const double mean_ns =
        t.calls == 0 ? 0.0 : static_cast<double>(t.nanos) / static_cast<double>(t.calls);
    os << std::left << std::setw(14) << to_string(t.phase) << std::right << std::setw(12)
       << t.calls << std::setw(14) << std::fixed << std::setprecision(1) << total_us
       << std::setw(12) << std::setprecision(1) << mean_ns;
    if (overhead_ns_per_pair > 0) {
      // Each call paid one timer pair; what remains is the phase's own work.
      const double net_ns = std::max(0.0, mean_ns - static_cast<double>(overhead_ns_per_pair));
      os << std::setw(12) << std::setprecision(1) << net_ns;
    }
    os << '\n';
  }
}

}  // namespace rstp::obs
