#include "rstp/obs/trace.h"

#include <algorithm>
#include <array>
#include <limits>
#include <optional>
#include <ostream>
#include <string>

#include "rstp/common/check.h"
#include "rstp/obs/json.h"

namespace rstp::obs::trace {

std::string_view to_string(Name name) {
  switch (name) {
    case Name::Send:
      return "send";
    case Name::Recv:
      return "recv";
    case Name::Write:
      return "write";
    case Name::Idle:
      return "idle";
    case Name::BlockEncode:
      return "block_encode";
    case Name::BlockDecode:
      return "block_decode";
    case Name::AckRound:
      return "ack_round";
    case Name::PktData:
      return "pkt_data";
    case Name::PktAck:
      return "pkt_ack";
    case Name::FaultDrop:
      return "fault_drop";
    case Name::FaultDuplicate:
      return "fault_duplicate";
    case Name::FaultLate:
      return "fault_late";
    case Name::FaultCorrupt:
      return "fault_corrupt";
  }
  RSTP_UNREACHABLE("unknown trace name");
}

// ---------------------------------------------------------------------------
// Buffer

Buffer::Buffer(std::size_t capacity) : capacity_(capacity) {
  RSTP_CHECK_GE(capacity, std::size_t{1}, "trace buffer needs a positive capacity");
  records_.reserve(capacity_);
}

// ---------------------------------------------------------------------------
// Tracer

namespace detail {

std::atomic<Tracer*> host_sink{nullptr};

void record_host_span(Phase phase, std::uint64_t start_ns, std::uint64_t end_ns) {
  Tracer* tracer = host_sink.load(std::memory_order_acquire);
  if (tracer == nullptr) return;
  Record rec;
  rec.kind = RecKind::HostSpan;
  rec.track = Track::Host;
  rec.start = static_cast<std::int64_t>(start_ns);
  rec.dur = static_cast<std::int64_t>(end_ns - start_ns);
  rec.arg = static_cast<std::uint64_t>(phase);
  tracer->host_buffer_for_this_thread().append(rec);
}

}  // namespace detail

namespace {

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

/// This thread's host-buffer cache, keyed by never-reused tracer id (the same
/// pattern as the metrics registry shards): a stale entry for a destroyed
/// tracer can never be mistaken for a live one.
struct TlsBuf {
  std::uint64_t tracer_id;
  Buffer* buffer;
};

thread_local std::vector<TlsBuf> tls_host_buffers;

[[nodiscard]] int pid_of(Track track) {
  switch (track) {
    case Track::Transmitter:
      return 1;
    case Track::Channel:
      return 2;
    case Track::Receiver:
      return 3;
    case Track::Host:
      return 100;
  }
  RSTP_UNREACHABLE("unknown trace track");
}

}  // namespace

Tracer::Tracer(TraceConfig config)
    : config_(config), tracer_id_(next_tracer_id()), model_(config.capacity) {}

Tracer::~Tracer() { detach_host_hook(); }

void Tracer::attach_host_hook() {
  Tracer* expected = nullptr;
  RSTP_CHECK(detail::host_sink.compare_exchange_strong(expected, this,
                                                       std::memory_order_acq_rel),
             "another Tracer's host hook is already attached");
  attached_ = true;
}

void Tracer::detach_host_hook() {
  if (!attached_) return;
  Tracer* expected = this;
  detail::host_sink.compare_exchange_strong(expected, nullptr, std::memory_order_acq_rel);
  attached_ = false;
}

Buffer& Tracer::host_buffer_for_this_thread() {
  for (const TlsBuf& entry : tls_host_buffers) {
    if (entry.tracer_id == tracer_id_) return *entry.buffer;
  }
  const std::scoped_lock lock{mutex_};
  host_buffers_.push_back(std::make_unique<Buffer>(config_.capacity));
  Buffer& buffer = *host_buffers_.back();
  tls_host_buffers.push_back(TlsBuf{tracer_id_, &buffer});
  return buffer;
}

std::uint64_t Tracer::dropped() const {
  std::uint64_t total = model_.dropped();
  const std::scoped_lock lock{mutex_};
  for (const auto& buffer : host_buffers_) total += buffer->dropped();
  return total;
}

std::uint64_t Tracer::host_span_count() const {
  const std::scoped_lock lock{mutex_};
  std::uint64_t total = 0;
  for (const auto& buffer : host_buffers_) total += buffer->records().size();
  return total;
}

// ---------------------------------------------------------------------------
// Chrome Trace Event Format export

namespace {

class EventWriter {
 public:
  explicit EventWriter(std::ostream& os) : os_(os) { os_ << "{\"traceEvents\":[\n"; }

  void meta(std::string_view what, int pid, std::optional<int> tid, std::string_view name) {
    sep();
    os_ << "{\"ph\":\"M\",\"name\":" << json_quote(what) << ",\"pid\":" << pid;
    if (tid.has_value()) os_ << ",\"tid\":" << *tid;
    os_ << ",\"args\":{\"name\":" << json_quote(name) << "}}";
  }

  void sep() {
    if (!first_) os_ << ",\n";
    first_ = false;
  }

  std::ostream& os() { return os_; }

 private:
  std::ostream& os_;
  bool first_ = true;
};

[[nodiscard]] int model_tid(const Record& rec) {
  return rec.track == Track::Channel ? static_cast<int>(rec.lane)
                                     : static_cast<int>(rec.session);
}

void write_model_record(EventWriter& w, const Record& rec) {
  std::ostream& os = w.os();
  const int pid = pid_of(rec.track);
  const int tid = model_tid(rec);
  switch (rec.kind) {
    case RecKind::ModelSpan: {
      w.sep();
      os << "{\"ph\":\"X\",\"name\":" << json_quote(to_string(rec.name))
         << ",\"cat\":\"model\",\"pid\":" << pid << ",\"tid\":" << tid
         << ",\"ts\":" << rec.start << ",\"dur\":" << rec.dur;
      os << ",\"args\":{";
      switch (rec.name) {
        case Name::Send:
        case Name::Recv:
        case Name::PktData:
        case Name::PktAck:
          os << "\"payload\":" << rec.arg;
          if (rec.has_flow) os << ",\"seq\":" << rec.flow_id;
          break;
        case Name::Write:
          os << "\"bit\":" << rec.arg;
          break;
        case Name::BlockEncode:
        case Name::BlockDecode:
        case Name::AckRound:
          os << "\"count\":" << rec.arg;
          break;
        case Name::FaultDrop:
        case Name::FaultDuplicate:
        case Name::FaultLate:
        case Name::FaultCorrupt:
          os << "\"payload\":" << rec.arg << ",\"seq\":" << rec.flow_id;
          break;
        case Name::Idle:
          break;
      }
      os << "}}";
      return;
    }
    case RecKind::FlowStart:
      w.sep();
      os << "{\"ph\":\"s\",\"name\":" << json_quote(to_string(rec.name))
         << ",\"cat\":\"flow\",\"id\":" << rec.flow_id << ",\"pid\":" << pid
         << ",\"tid\":" << tid << ",\"ts\":" << rec.start << "}";
      return;
    case RecKind::FlowFinish:
      w.sep();
      os << "{\"ph\":\"f\",\"bp\":\"e\",\"name\":" << json_quote(to_string(rec.name))
         << ",\"cat\":\"flow\",\"id\":" << rec.flow_id << ",\"pid\":" << pid
         << ",\"tid\":" << tid << ",\"ts\":" << rec.start << "}";
      return;
    case RecKind::HostSpan:
      return;  // host spans never land in the model buffer
  }
}

}  // namespace

void Tracer::write_chrome_json(std::ostream& os) const {
  const std::scoped_lock lock{mutex_};
  EventWriter w{os};

  // Track metadata. Sessions/lanes actually used decide the thread rows.
  bool lanes_used[256] = {};
  std::vector<std::uint32_t> session_ids;
  for (const Record& rec : model_.records()) {
    if (rec.track == Track::Channel) {
      lanes_used[rec.lane] = true;
    } else if (rec.kind == RecKind::ModelSpan || rec.kind == RecKind::FlowStart ||
               rec.kind == RecKind::FlowFinish) {
      if (std::find(session_ids.begin(), session_ids.end(), rec.session) ==
          session_ids.end()) {
        session_ids.push_back(rec.session);
      }
    }
  }
  w.meta("process_name", pid_of(Track::Transmitter), std::nullopt, "model: transmitter");
  w.meta("process_name", pid_of(Track::Channel), std::nullopt, "model: channel");
  w.meta("process_name", pid_of(Track::Receiver), std::nullopt, "model: receiver");
  for (const std::uint32_t session : session_ids) {
    const std::string label = "session " + std::to_string(session);
    w.meta("thread_name", pid_of(Track::Transmitter), static_cast<int>(session), label);
    w.meta("thread_name", pid_of(Track::Receiver), static_cast<int>(session), label);
  }
  for (int lane = 0; lane < 256; ++lane) {
    if (!lanes_used[lane]) continue;
    w.meta("thread_name", pid_of(Track::Channel), lane,
           lane == kFaultLane ? "faults" : "lane " + std::to_string(lane));
  }

  std::size_t host_span_count = 0;
  std::int64_t host_base = std::numeric_limits<std::int64_t>::max();
  for (const auto& buffer : host_buffers_) {
    for (const Record& rec : buffer->records()) {
      ++host_span_count;
      host_base = std::min(host_base, rec.start);
    }
  }
  if (host_span_count > 0) {
    w.meta("process_name", pid_of(Track::Host), std::nullopt, "host: phase timers");
    for (std::size_t i = 0; i < host_buffers_.size(); ++i) {
      w.meta("thread_name", pid_of(Track::Host), static_cast<int>(i),
             "thread " + std::to_string(i));
    }
  }

  for (const Record& rec : model_.records()) write_model_record(w, rec);

  // Host spans: rebase to the earliest span and convert ns → µs (Chrome's ts
  // unit), keeping sub-µs precision as a fraction.
  for (std::size_t i = 0; i < host_buffers_.size(); ++i) {
    for (const Record& rec : host_buffers_[i]->records()) {
      if (rec.arg >= kPhaseCount) continue;
      w.sep();
      os << "{\"ph\":\"X\",\"name\":"
         << json_quote(obs::to_string(static_cast<Phase>(rec.arg)))
         << ",\"cat\":\"host\",\"pid\":" << pid_of(Track::Host) << ",\"tid\":" << i
         << ",\"ts\":" << json_number(static_cast<double>(rec.start - host_base) / 1000.0)
         << ",\"dur\":" << json_number(static_cast<double>(rec.dur) / 1000.0) << "}";
    }
  }

  std::uint64_t dropped_total = model_.dropped();
  for (const auto& buffer : host_buffers_) dropped_total += buffer->dropped();
  os << "\n],\"otherData\":{\"schema\":\"rstp-trace-v1\",\"tick\":\"1us\","
     << "\"host_clock\":" << json_quote(to_string(host_clock_source()))
     << ",\"dropped\":" << dropped_total << "}}\n";
}

// ---------------------------------------------------------------------------
// Summary

Summary summarize(const Tracer& tracer) {
  Summary s;
  s.dropped = tracer.dropped();
  s.host_spans = tracer.host_span_count();
  constexpr std::size_t kDelayBuckets = 64;
  std::array<std::uint64_t, kDelayBuckets> buckets{};
  for (const Record& rec : tracer.model_buffer().records()) {
    switch (rec.kind) {
      case RecKind::ModelSpan:
        ++s.model_spans;
        if (rec.track == Track::Channel && rec.name == Name::PktData &&
            rec.lane != kFaultLane) {
          ++s.data_delivered;
          const auto bucket = static_cast<std::size_t>(std::min<std::int64_t>(
              std::max<std::int64_t>(rec.dur, 0), kDelayBuckets - 1));
          ++buckets[bucket];
        }
        break;
      case RecKind::FlowStart:
      case RecKind::FlowFinish:
        ++s.flow_events;
        break;
      case RecKind::HostSpan:
        break;
    }
  }
  if (s.data_delivered > 0) {
    s.delay_p50 = static_cast<std::int64_t>(
        nearest_rank_bucket(buckets.data(), buckets.size(), s.data_delivered, 50));
    s.delay_p95 = static_cast<std::int64_t>(
        nearest_rank_bucket(buckets.data(), buckets.size(), s.data_delivered, 95));
    s.delay_p99 = static_cast<std::int64_t>(
        nearest_rank_bucket(buckets.data(), buckets.size(), s.data_delivered, 99));
  }
  return s;
}

// ---------------------------------------------------------------------------
// ModelRecorder

namespace {
constexpr std::size_t kMaxLanes = 64;

[[nodiscard]] Track track_of(ioa::ProcessId id) {
  return id == ioa::ProcessId::Transmitter ? Track::Transmitter : Track::Receiver;
}

[[nodiscard]] Name packet_name(const ioa::Packet& packet) {
  return packet.direction == ioa::Packet::Direction::TransmitterToReceiver ? Name::PktData
                                                                           : Name::PktAck;
}

[[nodiscard]] Name fault_name(fault::FaultKind kind) {
  switch (kind) {
    case fault::FaultKind::Drop:
      return Name::FaultDrop;
    case fault::FaultKind::Duplicate:
      return Name::FaultDuplicate;
    case fault::FaultKind::Late:
      return Name::FaultLate;
    case fault::FaultKind::Corrupt:
      return Name::FaultCorrupt;
  }
  RSTP_UNREACHABLE("unknown fault kind");
}
}  // namespace

ModelRecorder::ModelRecorder(Tracer& tracer, std::uint32_t session)
    : tracer_(&tracer), buffer_(&tracer.model_buffer()), session_(session) {
  lane_busy_until_.reserve(kMaxLanes);  // all swimlane growth preallocated
}

void ModelRecorder::close_idle(ProcessTrack& track, Track where) {
  if (!track.idle_open) return;
  Record rec;
  rec.name = Name::Idle;
  rec.track = where;
  rec.session = session_;
  rec.start = track.idle_start;
  rec.dur = track.idle_last - track.idle_start;
  buffer_->append(rec);
  track.idle_open = false;
}

void ModelRecorder::note_counters(ioa::ProcessId id, std::int64_t at,
                                  const ProtocolCounters* counters) {
  if (counters == nullptr) return;
  ProcessTrack& track = tracks_[static_cast<std::size_t>(id)];
  if (counters->blocks_encoded > track.prev.blocks_encoded) {
    Record rec;
    rec.name = Name::BlockEncode;
    rec.track = track_of(id);
    rec.session = session_;
    rec.start = block_open_ ? block_start_ : at;
    rec.dur = at - rec.start;
    rec.arg = counters->blocks_encoded;
    buffer_->append(rec);
    block_open_ = false;
  }
  if (counters->blocks_decoded > track.prev.blocks_decoded) {
    Record rec;
    rec.name = Name::BlockDecode;
    rec.track = track_of(id);
    rec.session = session_;
    rec.start = at;
    rec.arg = counters->blocks_decoded;
    buffer_->append(rec);
  }
  if (counters->acks_sent > track.prev.acks_sent) {
    Record rec;
    rec.name = Name::AckRound;
    rec.track = track_of(id);
    rec.session = session_;
    rec.start = at;
    rec.arg = counters->acks_sent;
    buffer_->append(rec);
  }
  track.prev = *counters;
}

void ModelRecorder::on_local_step(ioa::ProcessId id, Time at, const ioa::Action& action,
                                  const ProtocolCounters* counters) {
  ProcessTrack& track = tracks_[static_cast<std::size_t>(id)];
  const Track where = track_of(id);
  const std::int64_t t = at.ticks();
  if (action.kind == ioa::ActionKind::Internal) {
    if (!track.idle_open) {
      track.idle_open = true;
      track.idle_start = t;
    }
    track.idle_last = t;
  } else {
    close_idle(track, where);
    if (action.kind == ioa::ActionKind::Write) {
      Record rec;
      rec.name = Name::Write;
      rec.track = where;
      rec.session = session_;
      rec.start = t;
      rec.arg = action.message;
      buffer_->append(rec);
    }
    if (action.kind == ioa::ActionKind::Send && id == ioa::ProcessId::Transmitter &&
        !block_open_) {
      block_open_ = true;
      block_start_ = t;
    }
  }
  note_counters(id, t, counters);
}

void ModelRecorder::on_send(ioa::ProcessId id, Time at, const ioa::Packet& packet,
                            std::uint64_t send_seq, bool entered_channel) {
  const Track where = track_of(id);
  const std::int64_t t = at.ticks();
  Record span;
  span.name = Name::Send;
  span.track = where;
  span.session = session_;
  span.start = t;
  span.arg = packet.payload;
  span.flow_id = send_seq;
  span.has_flow = entered_channel;
  buffer_->append(span);
  if (entered_channel) {
    Record flow;
    flow.kind = RecKind::FlowStart;
    flow.name = packet_name(packet);
    flow.track = where;
    flow.session = session_;
    flow.start = t;
    flow.flow_id = send_seq;
    flow.has_flow = true;
    buffer_->append(flow);
  }
}

std::uint8_t ModelRecorder::assign_lane(std::int64_t sent_at, std::int64_t deliver_at) {
  // Deterministic greedy interval packing: the lowest lane free by sent_at,
  // else a fresh lane (preallocated up to kMaxLanes), else the lane that
  // frees up first (lowest index on ties). Zero-duration flights still
  // occupy their instant so same-tick flights fan out across lanes.
  const std::int64_t busy_until = deliver_at + (deliver_at == sent_at ? 1 : 0);
  for (std::size_t i = 0; i < lane_busy_until_.size(); ++i) {
    if (lane_busy_until_[i] <= sent_at) {
      lane_busy_until_[i] = busy_until;
      return static_cast<std::uint8_t>(i);
    }
  }
  if (lane_busy_until_.size() < kMaxLanes) {
    lane_busy_until_.push_back(busy_until);
    return static_cast<std::uint8_t>(lane_busy_until_.size() - 1);
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < lane_busy_until_.size(); ++i) {
    if (lane_busy_until_[i] < lane_busy_until_[best]) best = i;
  }
  lane_busy_until_[best] = busy_until;
  return static_cast<std::uint8_t>(best);
}

void ModelRecorder::on_delivery(ioa::ProcessId dest, Time sent_at, Time deliver_at,
                                const ioa::Packet& packet, std::uint64_t send_seq,
                                const ProtocolCounters* dest_counters) {
  const Track dest_track = track_of(dest);
  const std::int64_t sent = sent_at.ticks();
  const std::int64_t delivered = deliver_at.ticks();

  Record recv;
  recv.name = Name::Recv;
  recv.track = dest_track;
  recv.session = session_;
  recv.start = delivered;
  recv.arg = packet.payload;
  recv.flow_id = send_seq;
  recv.has_flow = true;
  buffer_->append(recv);

  Record finish;
  finish.kind = RecKind::FlowFinish;
  finish.name = packet_name(packet);
  finish.track = dest_track;
  finish.session = session_;
  finish.start = delivered;
  finish.flow_id = send_seq;
  finish.has_flow = true;
  buffer_->append(finish);

  Record flight;
  flight.name = packet_name(packet);
  flight.track = Track::Channel;
  flight.session = session_;
  flight.start = sent;
  flight.dur = delivered - sent;
  flight.arg = packet.payload;
  flight.flow_id = send_seq;
  flight.has_flow = true;
  flight.lane = assign_lane(sent, delivered);
  buffer_->append(flight);

  note_counters(dest, delivered, dest_counters);
}

void ModelRecorder::on_finish(Time end, const std::vector<fault::FaultEvent>& faults) {
  close_idle(tracks_[0], Track::Transmitter);
  close_idle(tracks_[1], Track::Receiver);
  if (block_open_) {
    // A block still being encoded when the run ended (event cap, faults):
    // emit the open span so the truncation is visible on the timeline.
    Record rec;
    rec.name = Name::BlockEncode;
    rec.track = Track::Transmitter;
    rec.session = session_;
    rec.start = block_start_;
    rec.dur = end.ticks() - block_start_;
    rec.arg = tracks_[0].prev.blocks_encoded + 1;
    buffer_->append(rec);
    block_open_ = false;
  }
  for (const fault::FaultEvent& fault : faults) {
    Record rec;
    rec.name = fault_name(fault.kind);
    rec.track = Track::Channel;
    rec.lane = kFaultLane;
    rec.session = session_;
    rec.start = fault.at.ticks();
    rec.arg = fault.injected.payload;
    rec.flow_id = fault.send_seq;
    rec.has_flow = true;
    buffer_->append(rec);
  }
}

}  // namespace rstp::obs::trace
