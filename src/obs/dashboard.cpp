#include "rstp/obs/dashboard.h"

#include "rstp/obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string_view>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace rstp::obs {

namespace {

constexpr std::string_view kReset = "\x1b[0m";
constexpr std::string_view kBold = "\x1b[1m";
constexpr std::string_view kGreen = "\x1b[32m";
constexpr std::string_view kRed = "\x1b[31m";

constexpr std::size_t kBarWidth = 24;

[[nodiscard]] std::string fixed(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

[[nodiscard]] double fraction_done(std::uint64_t done, std::uint64_t total) {
  if (total == 0) return 1.0;
  return std::min(1.0, static_cast<double>(done) / static_cast<double>(total));
}

/// `[####........]` with the fill colored when `color` is set. An empty grid
/// (total == 0) renders full: there is nothing left to do.
[[nodiscard]] std::string bar(std::uint64_t done, std::uint64_t total, bool color) {
  const double f = fraction_done(done, total);
  const auto filled =
      std::min(kBarWidth, static_cast<std::size_t>(f * static_cast<double>(kBarWidth) + 1e-9));
  std::string out = "[";
  if (color && filled > 0) out += kGreen;
  out.append(filled, '#');
  if (color && filled > 0) out += kReset;
  out.append(kBarWidth - filled, '.');
  out += ']';
  return out;
}

[[nodiscard]] double rate_per_second(std::uint64_t done, double elapsed_seconds) {
  if (elapsed_seconds <= 0) return 0;
  return static_cast<double>(done) / elapsed_seconds;
}

/// Remaining seconds extrapolated from the average rate so far; negative
/// when it cannot be estimated yet (nothing done, or already finished).
[[nodiscard]] double eta_seconds(std::uint64_t done, std::uint64_t total,
                                 double elapsed_seconds) {
  if (done == 0 || done >= total || elapsed_seconds <= 0) return -1;
  const auto d = static_cast<double>(done);
  return elapsed_seconds * (static_cast<double>(total) - d) / d;
}

[[nodiscard]] std::string_view header_label(const DashboardState& s) {
  if (!s.label.empty()) return s.label;
  return s.mode == DashboardState::Mode::Campaign ? "campaign" : "fuzz";
}

void append_header(std::ostringstream& os, const DashboardState& s, std::string_view unit) {
  if (s.color) os << kBold;
  os << header_label(s);
  if (s.color) os << kReset;
  os << "  " << bar(s.done, s.total, s.color) << "  " << s.done << '/' << s.total << ' '
     << unit << " (" << fixed(100.0 * fraction_done(s.done, s.total), 1) << "%)  elapsed "
     << fixed(s.elapsed_seconds, 1) << 's';
  const double eta = eta_seconds(s.done, s.total, s.elapsed_seconds);
  if (eta >= 0) os << "  eta " << fixed(eta, 1) << 's';
  os << '\n';
}

void append_campaign_body(std::ostringstream& os, const DashboardState& s) {
  os << "  " << fixed(rate_per_second(s.done, s.elapsed_seconds), 1) << " jobs/s  |  "
     << s.events << " events  |  effort mean "
     << (s.effort_jobs > 0 ? fixed(s.effort_mean, 2) : "-") << "  |  delay p50/p95/p99 "
     << delay_percentile(s.delay_buckets, s.delay_count, 50) << '/'
     << delay_percentile(s.delay_buckets, s.delay_count, 95) << '/'
     << delay_percentile(s.delay_buckets, s.delay_count, 99) << " ticks\n";
  std::size_t name_width = 0;
  for (const DashboardProtocolRow& row : s.protocols) {
    name_width = std::max(name_width, row.name.size());
  }
  for (const DashboardProtocolRow& row : s.protocols) {
    os << "  " << row.name << std::string(name_width - row.name.size(), ' ') << "  "
       << bar(row.done, row.total, s.color) << "  " << row.done << '/' << row.total
       << "  effort " << (row.effort_jobs > 0 ? fixed(row.effort_mean, 2) : "-")
       << "  events " << row.events << '\n';
  }
}

void append_fuzz_body(std::ostringstream& os, const DashboardState& s) {
  os << "  gen " << s.generation << "  |  "
     << fixed(rate_per_second(s.done, s.elapsed_seconds), 1) << " cases/s  |  corpus "
     << s.corpus << "  |  coverage " << s.coverage << " (+" << s.coverage_gain
     << ")  |  crashes " << s.crashes << "  |  ";
  const bool alarm = s.color && s.failures > 0;
  if (alarm) os << kRed;
  os << "failures " << s.failures;
  if (alarm) os << kReset;
  os << '\n';
}

}  // namespace

std::int64_t delay_percentile(const std::vector<std::uint64_t>& buckets, std::uint64_t count,
                              double p) {
  if (count == 0 || buckets.empty()) return 0;
  // Display fold: bucket index i holds delays of i ticks (clamped at the top
  // bucket), so the bucket index *is* the reported value.
  return static_cast<std::int64_t>(nearest_rank_bucket(buckets.data(), buckets.size(), count, p));
}

std::string render_frame(const DashboardState& state) {
  std::ostringstream os;
  if (state.mode == DashboardState::Mode::Campaign) {
    append_header(os, state, "jobs");
    append_campaign_body(os, state);
  } else {
    append_header(os, state, "cases");
    append_fuzz_body(os, state);
  }
  return os.str();
}

std::string render_line(const DashboardState& state) {
  std::ostringstream os;
  if (state.mode == DashboardState::Mode::Campaign) {
    os << "campaign: " << state.done << '/' << state.total << " jobs ("
       << fixed(100.0 * fraction_done(state.done, state.total), 1) << "%), " << state.events
       << " events";
    if (state.effort_jobs > 0) os << ", mean effort " << fixed(state.effort_mean, 2);
    const double eta = eta_seconds(state.done, state.total, state.elapsed_seconds);
    if (eta >= 0) os << ", eta " << fixed(eta, 1) << 's';
  } else {
    os << "fuzz: gen " << state.generation << ", " << state.done << '/' << state.total
       << " cases, corpus " << state.corpus << ", coverage " << state.coverage << " (+"
       << state.coverage_gain << "), crashes " << state.crashes << ", failures "
       << state.failures;
  }
  return os.str();
}

bool stream_supports_dashboard(std::FILE* stream) {
#if defined(__unix__) || defined(__APPLE__)
  if (stream == nullptr || ::isatty(fileno(stream)) == 0) return false;
  if (std::getenv("NO_COLOR") != nullptr) return false;
  const char* term = std::getenv("TERM");
  if (term == nullptr || term[0] == '\0' || std::string_view{term} == "dumb") return false;
  return true;
#else
  (void)stream;
  return false;
#endif
}

void Dashboard::draw(const DashboardState& state) {
  const std::string frame = render_frame(state);
  std::ostream& os = *os_;
  if (!cursor_hidden_) {
    os << "\x1b[?25l";
    cursor_hidden_ = true;
  }
  if (last_lines_ > 0) {
    // Rewind over the previous frame and erase to the end of the screen, so
    // a shrinking frame leaves no stale tail behind.
    os << "\x1b[" << last_lines_ << "A\r\x1b[0J";
  }
  os << frame << std::flush;
  last_lines_ = static_cast<std::size_t>(std::count(frame.begin(), frame.end(), '\n'));
}

void Dashboard::close() {
  if (cursor_hidden_) {
    *os_ << "\x1b[?25h" << std::flush;
    cursor_hidden_ = false;
  }
  last_lines_ = 0;
}

}  // namespace rstp::obs
