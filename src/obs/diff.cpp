#include "rstp/obs/diff.h"

#include <charconv>
#include <cmath>
#include <iomanip>
#include <map>
#include <ostream>
#include <sstream>

#include "rstp/common/check.h"

namespace rstp::obs {

namespace {

/// One extracted quantity: name + exact value in its native width.
struct Quantity {
  std::string_view name;
  bool integral = true;
  std::uint64_t u = 0;
  double v = 0;
};

[[nodiscard]] Quantity integral_quantity(std::string_view name, std::uint64_t value) {
  return Quantity{name, true, value, static_cast<double>(value)};
}

[[nodiscard]] Quantity floating_quantity(std::string_view name, double value) {
  return Quantity{name, false, 0, value};
}

/// The RunCounters catalog: (name, member) in struct order. Shared between
/// the per-cell quantities and the "_total" aggregates so the two can never
/// drift apart.
struct CounterField {
  std::string_view name;
  std::uint64_t RunCounters::* member;
};
struct ProtocolCounterField {
  std::string_view name;
  std::uint64_t ProtocolCounters::* member;
};

constexpr CounterField kCounterFields[] = {
    {"events", &RunCounters::events},
    {"data_sends", &RunCounters::data_sends},
    {"ack_sends", &RunCounters::ack_sends},
    {"data_recvs", &RunCounters::data_recvs},
    {"ack_recvs", &RunCounters::ack_recvs},
    {"dropped", &RunCounters::dropped},
    {"writes", &RunCounters::writes},
    {"transmitter_steps", &RunCounters::transmitter_steps},
    {"receiver_steps", &RunCounters::receiver_steps},
    {"transmitter_internal_steps", &RunCounters::transmitter_internal_steps},
    {"receiver_internal_steps", &RunCounters::receiver_internal_steps},
};

constexpr ProtocolCounterField kProtocolCounterFields[] = {
    {"blocks_encoded", &ProtocolCounters::blocks_encoded},
    {"blocks_decoded", &ProtocolCounters::blocks_decoded},
    {"acks_sent", &ProtocolCounters::acks_sent},
    {"acks_observed", &ProtocolCounters::acks_observed},
    {"retransmissions", &ProtocolCounters::retransmissions},
};

struct HistogramField {
  std::string_view name;
  Histogram RunMetrics::* member;
};

constexpr HistogramField kHistogramFields[] = {
    {"data_delay", &RunMetrics::data_delay},
    {"ack_delay", &RunMetrics::ack_delay},
    {"transmitter_gap", &RunMetrics::transmitter_gap},
    {"receiver_gap", &RunMetrics::receiver_gap},
};

/// Histogram summary names are materialized once ("data_delay_p50", ...) so
/// the per-cell extraction can hand out string_views.
[[nodiscard]] const std::vector<std::string>& histogram_quantity_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const HistogramField& h : kHistogramFields) {
      for (const std::string_view leaf : {"count", "mean", "p50", "p95", "p99"}) {
        out.push_back(std::string{h.name} + "_" + std::string{leaf});
      }
    }
    return out;
  }();
  return names;
}

/// Every per-cell quantity of a record, in a fixed catalog order. Both sides
/// of the join go through this one function, so positional pairing is safe.
[[nodiscard]] std::vector<Quantity> cell_quantities(const RunMetricsRecord& r) {
  std::vector<Quantity> out;
  out.reserve(40);
  out.push_back(floating_quantity("effort", r.effort));
  out.push_back(floating_quantity("gap_ratio", r.gap_ratio));
  out.push_back(floating_quantity("est_penalty", r.est_penalty));
  out.push_back(integral_quantity("est_c1_hat", static_cast<std::uint64_t>(r.est.c1_hat)));
  out.push_back(integral_quantity("est_c2_hat", static_cast<std::uint64_t>(r.est.c2_hat)));
  out.push_back(integral_quantity("est_d_hat", static_cast<std::uint64_t>(r.est.d_hat)));
  out.push_back(integral_quantity("est_gap_samples", r.est.gap_samples));
  out.push_back(integral_quantity("est_delay_samples", r.est.delay_samples));
  out.push_back(integral_quantity("est_resizes", r.est.resizes));
  out.push_back(integral_quantity("end_time", static_cast<std::uint64_t>(r.end_time)));
  out.push_back(integral_quantity("correct", r.correct ? 1 : 0));
  out.push_back(integral_quantity("quiescent", r.quiescent ? 1 : 0));
  // Megasession rows only (0 elsewhere). events_per_sec is deliberately NOT a
  // cell quantity: it is wall-clock, so cell-exact comparison would trip on
  // machine noise — the report gates it through the aggregates instead.
  out.push_back(integral_quantity("sessions", r.sessions));
  for (const CounterField& f : kCounterFields) {
    out.push_back(integral_quantity(f.name, r.metrics.counters.*f.member));
  }
  for (const ProtocolCounterField& f : kProtocolCounterFields) {
    out.push_back(integral_quantity(f.name, r.metrics.counters.protocol.*f.member));
  }
  const std::vector<std::string>& names = histogram_quantity_names();
  std::size_t name_index = 0;
  for (const HistogramField& h : kHistogramFields) {
    const Histogram& hist = r.metrics.*h.member;
    out.push_back(integral_quantity(names[name_index++], hist.count()));
    out.push_back(floating_quantity(names[name_index++], hist.configured() ? hist.mean() : 0));
    for (const double p : {50.0, 95.0, 99.0}) {
      const std::int64_t value = hist.configured() ? hist.percentile(p) : 0;
      out.push_back(integral_quantity(names[name_index++], static_cast<std::uint64_t>(value)));
    }
  }
  return out;
}

[[nodiscard]] QuantityDelta make_delta(std::string_view name, const Quantity& old_q,
                                       const Quantity& new_q) {
  RSTP_CHECK(old_q.integral == new_q.integral, "quantity catalogs disagree on integrality");
  QuantityDelta d;
  d.name = std::string{name};
  d.integral = old_q.integral;
  d.old_u = old_q.u;
  d.new_u = new_q.u;
  d.old_v = old_q.integral ? static_cast<double>(old_q.u) : old_q.v;
  d.new_v = new_q.integral ? static_cast<double>(new_q.u) : new_q.v;
  return d;
}

[[nodiscard]] CellKey key_of(const RunMetricsRecord& r, std::uint64_t rep) {
  return CellKey{r.protocol, r.c1, r.c2, r.d, r.k, r.input_bits, r.seed, rep};
}

/// Assigns each record its occurrence index among identical identities, in
/// file order, and returns the keyed records in key order.
[[nodiscard]] std::map<CellKey, const RunMetricsRecord*> keyed(
    const std::vector<RunMetricsRecord>& records) {
  std::map<CellKey, const RunMetricsRecord*> out;
  std::map<CellKey, std::uint64_t> reps;
  for (const RunMetricsRecord& r : records) {
    std::uint64_t& rep = reps[key_of(r, 0)];
    out.emplace(key_of(r, rep), &r);
    ++rep;
  }
  return out;
}

void append_number(std::ostream& os, const QuantityDelta& d, bool old_side) {
  if (d.integral) {
    os << (old_side ? d.old_u : d.new_u);
  } else {
    os << json_number(old_side ? d.old_v : d.new_v);
  }
}

void write_key_json(std::ostream& os, const CellKey& key) {
  os << "{\"protocol\":" << json_quote(key.protocol) << ",\"c1\":" << key.c1
     << ",\"c2\":" << key.c2 << ",\"d\":" << key.d << ",\"k\":" << key.k
     << ",\"input_bits\":" << key.input_bits << ",\"seed\":" << key.seed
     << ",\"rep\":" << key.rep << "}";
}

void write_deltas_json(std::ostream& os, const std::vector<QuantityDelta>& deltas) {
  os << "[";
  bool first = true;
  for (const QuantityDelta& d : deltas) {
    if (!first) os << ",";
    first = false;
    os << "{\"name\":" << json_quote(d.name) << ",\"int\":" << (d.integral ? "true" : "false")
       << ",\"old\":";
    append_number(os, d, true);
    os << ",\"new\":";
    append_number(os, d, false);
    os << "}";
  }
  os << "]";
}

[[nodiscard]] CellKey read_key_json(const JsonValue& v) {
  CellKey key;
  key.protocol = v.string_or("protocol", "");
  key.c1 = v.i64_or("c1", 0);
  key.c2 = v.i64_or("c2", 0);
  key.d = v.i64_or("d", 0);
  key.k = static_cast<std::uint32_t>(v.u64_or("k", 2));
  key.input_bits = v.u64_or("input_bits", 0);
  key.seed = v.u64_or("seed", 0);
  key.rep = v.u64_or("rep", 0);
  return key;
}

[[nodiscard]] std::vector<QuantityDelta> read_deltas_json(const JsonValue& v) {
  std::vector<QuantityDelta> out;
  for (const JsonValue& item : v.items) {
    QuantityDelta d;
    d.name = item.string_or("name", "");
    d.integral = item.bool_or("int", true);
    const JsonValue* old_v = item.find("old");
    const JsonValue* new_v = item.find("new");
    if (old_v == nullptr || new_v == nullptr) {
      throw JsonParseError("delta object missing old/new");
    }
    if (d.integral) {
      d.old_u = old_v->to_u64();
      d.new_u = new_v->to_u64();
      d.old_v = static_cast<double>(d.old_u);
      d.new_v = static_cast<double>(d.new_u);
    } else {
      d.old_v = old_v->to_double();
      d.new_v = new_v->to_double();
    }
    out.push_back(std::move(d));
  }
  return out;
}

/// Compact human form of a delta value: exact for integral, shortest
/// round-trip for doubles.
[[nodiscard]] std::string value_string(const QuantityDelta& d, bool old_side) {
  if (d.integral) return std::to_string(old_side ? d.old_u : d.new_u);
  return json_number(old_side ? d.old_v : d.new_v);
}

[[nodiscard]] std::string pct_string(const QuantityDelta& d) {
  const double pct = d.pct();
  if (std::isinf(pct)) return pct > 0 ? "+inf%" : "-inf%";
  std::ostringstream os;
  os << std::showpos << std::fixed << std::setprecision(2) << pct << "%";
  return os.str();
}

void print_key(std::ostream& os, const CellKey& key) {
  os << key.protocol << " c1=" << key.c1 << " c2=" << key.c2 << " d=" << key.d
     << " k=" << key.k << " n=" << key.input_bits << " seed=" << key.seed;
  if (key.rep != 0) os << " rep=" << key.rep;
}

}  // namespace

bool QuantityDelta::changed() const {
  return integral ? old_u != new_u : old_v != new_v;
}

double QuantityDelta::delta() const {
  if (!integral) return new_v - old_v;
  // Sign + magnitude in u64 so counters near 2^64 keep an exact sign and a
  // magnitude that is exact up to 2^53.
  return new_u >= old_u ? static_cast<double>(new_u - old_u)
                        : -static_cast<double>(old_u - new_u);
}

double QuantityDelta::pct() const {
  if (!changed()) return 0;
  const double base = integral ? static_cast<double>(old_u) : old_v;
  if (base == 0) return delta() > 0 ? HUGE_VAL : -HUGE_VAL;
  return delta() / std::abs(base) * 100.0;
}

const QuantityDelta* DiffReport::find_aggregate(std::string_view name) const {
  for (const QuantityDelta& a : aggregates) {
    if (a.name == name) return &a;
  }
  const std::string total = std::string{name} + "_total";
  for (const QuantityDelta& a : aggregates) {
    if (a.name == total) return &a;
  }
  return nullptr;
}

DiffReport diff_metrics(const std::vector<RunMetricsRecord>& old_runs,
                        const std::vector<RunMetricsRecord>& new_runs) {
  DiffReport report;
  report.old_records = old_runs.size();
  report.new_records = new_runs.size();
  const std::map<CellKey, const RunMetricsRecord*> old_cells = keyed(old_runs);
  const std::map<CellKey, const RunMetricsRecord*> new_cells = keyed(new_runs);

  // Aggregate accumulators over matched pairs.
  RunCounters old_totals;
  RunCounters new_totals;
  std::uint64_t old_end_time = 0;
  std::uint64_t new_end_time = 0;
  double old_effort_sum = 0;
  double new_effort_sum = 0;
  double old_effort_max = 0;
  double new_effort_max = 0;
  double old_gap_sum = 0;
  double new_gap_sum = 0;
  double old_gap_max = 0;
  double new_gap_max = 0;
  double old_penalty_sum = 0;
  double new_penalty_sum = 0;
  double old_penalty_max = 0;
  double new_penalty_max = 0;
  double old_delay_p[3] = {0, 0, 0};
  double new_delay_p[3] = {0, 0, 0};
  std::uint64_t old_sessions = 0;
  std::uint64_t new_sessions = 0;
  double old_eps_sum = 0;
  double new_eps_sum = 0;

  for (const auto& [key, old_record] : old_cells) {
    const auto it = new_cells.find(key);
    if (it == new_cells.end()) {
      report.missing.push_back(key);
      continue;
    }
    const RunMetricsRecord& new_record = *it->second;
    ++report.matched;

    old_totals += old_record->metrics.counters;
    new_totals += new_record.metrics.counters;
    old_end_time += static_cast<std::uint64_t>(old_record->end_time);
    new_end_time += static_cast<std::uint64_t>(new_record.end_time);
    old_effort_sum += old_record->effort;
    new_effort_sum += new_record.effort;
    old_effort_max = std::max(old_effort_max, old_record->effort);
    new_effort_max = std::max(new_effort_max, new_record.effort);
    old_gap_sum += old_record->gap_ratio;
    new_gap_sum += new_record.gap_ratio;
    old_gap_max = std::max(old_gap_max, old_record->gap_ratio);
    new_gap_max = std::max(new_gap_max, new_record.gap_ratio);
    old_penalty_sum += old_record->est_penalty;
    new_penalty_sum += new_record.est_penalty;
    old_penalty_max = std::max(old_penalty_max, old_record->est_penalty);
    new_penalty_max = std::max(new_penalty_max, new_record.est_penalty);
    old_sessions += old_record->sessions;
    new_sessions += new_record.sessions;
    old_eps_sum += old_record->events_per_sec;
    new_eps_sum += new_record.events_per_sec;
    const double percentiles[3] = {50.0, 95.0, 99.0};
    for (std::size_t i = 0; i < 3; ++i) {
      const Histogram& old_h = old_record->metrics.data_delay;
      const Histogram& new_h = new_record.metrics.data_delay;
      old_delay_p[i] +=
          old_h.configured() ? static_cast<double>(old_h.percentile(percentiles[i])) : 0;
      new_delay_p[i] +=
          new_h.configured() ? static_cast<double>(new_h.percentile(percentiles[i])) : 0;
    }

    const std::vector<Quantity> old_q = cell_quantities(*old_record);
    const std::vector<Quantity> new_q = cell_quantities(new_record);
    RSTP_CHECK_EQ(old_q.size(), new_q.size(), "quantity catalogs differ in size");
    CellDiff cell;
    cell.key = key;
    for (std::size_t i = 0; i < old_q.size(); ++i) {
      RSTP_CHECK(old_q[i].name == new_q[i].name, "quantity catalogs differ in order");
      QuantityDelta d = make_delta(old_q[i].name, old_q[i], new_q[i]);
      if (d.changed()) cell.deltas.push_back(std::move(d));
    }
    if (!cell.deltas.empty()) report.cells.push_back(std::move(cell));
  }
  for (const auto& [key, record] : new_cells) {
    (void)record;
    if (!old_cells.contains(key)) report.extra.push_back(key);
  }

  const auto add_integral = [&](std::string_view name, std::uint64_t old_value,
                                std::uint64_t new_value) {
    report.aggregates.push_back(
        make_delta(name, integral_quantity(name, old_value), integral_quantity(name, new_value)));
  };
  const auto add_floating = [&](std::string_view name, double old_value, double new_value) {
    report.aggregates.push_back(make_delta(name, floating_quantity(name, old_value),
                                           floating_quantity(name, new_value)));
  };
  for (const CounterField& f : kCounterFields) {
    add_integral(std::string{f.name} + "_total", old_totals.*f.member, new_totals.*f.member);
  }
  for (const ProtocolCounterField& f : kProtocolCounterFields) {
    add_integral(std::string{f.name} + "_total", old_totals.protocol.*f.member,
                 new_totals.protocol.*f.member);
  }
  add_integral("end_time_total", old_end_time, new_end_time);
  const double matched = report.matched == 0 ? 1 : static_cast<double>(report.matched);
  add_floating("effort_mean", old_effort_sum / matched, new_effort_sum / matched);
  add_floating("effort_max", old_effort_max, new_effort_max);
  add_floating("gap_ratio_mean", old_gap_sum / matched, new_gap_sum / matched);
  add_floating("gap_ratio_max", old_gap_max, new_gap_max);
  add_floating("est_penalty_mean", old_penalty_sum / matched, new_penalty_sum / matched);
  add_floating("est_penalty_max", old_penalty_max, new_penalty_max);
  add_floating("delay_p50", old_delay_p[0] / matched, new_delay_p[0] / matched);
  add_floating("delay_p95", old_delay_p[1] / matched, new_delay_p[1] / matched);
  add_floating("delay_p99", old_delay_p[2] / matched, new_delay_p[2] / matched);
  add_integral("sessions_total", old_sessions, new_sessions);
  add_floating("events_per_sec_mean", old_eps_sum / matched, new_eps_sum / matched);
  // The gate only trips on positive deltas, so a throughput *decrease* is
  // gated by reporting the percentage drop itself as the new value (same
  // old=0/new=value construction as cells_changed below): 'events_per_sec_drop>N'
  // fails when new throughput fell more than N% below old. 0 — and therefore
  // inert — whenever the old side carries no throughput figures at all.
  const double eps_drop =
      old_eps_sum > 0 ? std::max(0.0, 100.0 * (1.0 - new_eps_sum / old_eps_sum)) : 0;
  add_floating("events_per_sec_drop", 0, eps_drop);
  add_integral("cells_changed", 0, report.cells.size());
  add_integral("cells_missing", 0, report.missing.size());
  add_integral("cells_extra", 0, report.extra.size());
  return report;
}

std::vector<Threshold> parse_thresholds(std::string_view spec) {
  std::vector<Threshold> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    std::string_view clause = spec.substr(pos, comma - pos);
    pos = comma + 1;
    // Trim surrounding whitespace; an empty clause (trailing comma) is an
    // error so a typo like 'a>1,,b>2' cannot silently weaken the gate.
    while (!clause.empty() && clause.front() == ' ') clause.remove_prefix(1);
    while (!clause.empty() && clause.back() == ' ') clause.remove_suffix(1);
    const std::string clause_text{clause};
    if (clause.empty()) {
      throw ThresholdParseError("empty threshold clause", clause_text);
    }
    const std::size_t gt = clause.find('>');
    if (gt == std::string_view::npos || gt == 0) {
      throw ThresholdParseError("threshold clause needs the form name>limit", clause_text);
    }
    Threshold t;
    t.source = clause_text;
    t.quantity = std::string{clause.substr(0, gt)};
    while (!t.quantity.empty() && t.quantity.back() == ' ') t.quantity.pop_back();
    std::string_view rest = clause.substr(gt + 1);
    if (!rest.empty() && rest.front() == '=') {
      t.inclusive = true;
      rest.remove_prefix(1);
    }
    while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
    if (!rest.empty() && rest.back() == '%') {
      t.relative = true;
      rest.remove_suffix(1);
    }
    const auto [ptr, ec] = std::from_chars(rest.data(), rest.data() + rest.size(), t.limit);
    if (ec != std::errc{} || ptr != rest.data() + rest.size() || rest.empty()) {
      throw ThresholdParseError("threshold limit is not a number", clause_text);
    }
    if (!std::isfinite(t.limit)) {
      // from_chars happily parses "nan"/"inf", and every comparison against
      // NaN is false — a 'name>nan' gate would silently pass everything.
      throw ThresholdParseError("threshold limit must be finite", clause_text);
    }
    if (t.limit < 0) {
      throw ThresholdParseError("threshold limit must be non-negative", clause_text);
    }
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<ThresholdViolation> evaluate_thresholds(const DiffReport& report,
                                                    const std::vector<Threshold>& thresholds) {
  std::vector<ThresholdViolation> out;
  for (const Threshold& t : thresholds) {
    const QuantityDelta* q = report.find_aggregate(t.quantity);
    if (q == nullptr) {
      throw ThresholdParseError("unknown gate quantity", t.quantity);
    }
    const double observed = t.relative ? q->pct() : q->delta();
    if (std::isnan(observed)) {
      // A NaN measurement (e.g. a NaN value leaking into a record) compares
      // false against everything; without this it would pass every gate. A
      // gate that cannot certify its quantity must fail loud.
      out.push_back(ThresholdViolation{t, *q, observed});
      continue;
    }
    if (observed <= 0) continue;  // improvements and no-ops never trip
    const bool tripped = t.inclusive ? observed >= t.limit : observed > t.limit;
    if (tripped) out.push_back(ThresholdViolation{t, *q, observed});
  }
  return out;
}

void write_diff_json(std::ostream& os, const DiffReport& report) {
  os << "{\"schema\":\"rstp-metrics-diff-v1\",\"old_records\":" << report.old_records
     << ",\"new_records\":" << report.new_records << ",\"matched\":" << report.matched;
  const auto write_keys = [&os](std::string_view field, const std::vector<CellKey>& keys) {
    os << ",\"" << field << "\":[";
    bool first = true;
    for (const CellKey& key : keys) {
      if (!first) os << ",";
      first = false;
      write_key_json(os, key);
    }
    os << "]";
  };
  write_keys("missing", report.missing);
  write_keys("extra", report.extra);
  os << ",\"cells\":[";
  bool first = true;
  for (const CellDiff& cell : report.cells) {
    if (!first) os << ",";
    first = false;
    os << "{\"key\":";
    write_key_json(os, cell.key);
    os << ",\"deltas\":";
    write_deltas_json(os, cell.deltas);
    os << "}";
  }
  os << "],\"aggregates\":";
  write_deltas_json(os, report.aggregates);
  os << "}\n";
}

DiffReport read_diff_json(std::string_view json) {
  const JsonValue doc = parse_json(json);
  if (doc.string_or("schema", "") != "rstp-metrics-diff-v1") {
    throw JsonParseError("not an rstp-metrics-diff-v1 document");
  }
  DiffReport report;
  report.old_records = doc.u64_or("old_records", 0);
  report.new_records = doc.u64_or("new_records", 0);
  report.matched = doc.u64_or("matched", 0);
  const auto read_keys = [&doc](std::string_view field, std::vector<CellKey>& out) {
    if (const JsonValue* v = doc.find(field)) {
      for (const JsonValue& item : v->items) out.push_back(read_key_json(item));
    }
  };
  read_keys("missing", report.missing);
  read_keys("extra", report.extra);
  if (const JsonValue* cells = doc.find("cells")) {
    for (const JsonValue& item : cells->items) {
      CellDiff cell;
      const JsonValue* key = item.find("key");
      const JsonValue* deltas = item.find("deltas");
      if (key == nullptr || deltas == nullptr) {
        throw JsonParseError("cell object missing key/deltas");
      }
      cell.key = read_key_json(*key);
      cell.deltas = read_deltas_json(*deltas);
      report.cells.push_back(std::move(cell));
    }
  }
  if (const JsonValue* aggregates = doc.find("aggregates")) {
    report.aggregates = read_deltas_json(*aggregates);
  }
  return report;
}

void print_diff_table(std::ostream& os, const DiffReport& report) {
  os << "diff: " << report.old_records << " old / " << report.new_records
     << " new records, " << report.matched << " matched, " << report.cells.size()
     << " changed, " << report.missing.size() << " missing, " << report.extra.size()
     << " extra\n";
  for (const CellKey& key : report.missing) {
    os << "  missing (old only): ";
    print_key(os, key);
    os << "\n";
  }
  for (const CellKey& key : report.extra) {
    os << "  extra (new only):   ";
    print_key(os, key);
    os << "\n";
  }
  for (const CellDiff& cell : report.cells) {
    os << "  cell ";
    print_key(os, cell.key);
    os << "\n";
    for (const QuantityDelta& d : cell.deltas) {
      os << "    " << std::left << std::setw(28) << d.name << std::right << " "
         << value_string(d, true) << " -> " << value_string(d, false) << "  ("
         << pct_string(d) << ")\n";
    }
  }
  os << "aggregates (changed):\n";
  bool any = false;
  for (const QuantityDelta& d : report.aggregates) {
    if (!d.changed()) continue;
    any = true;
    os << "  " << std::left << std::setw(28) << d.name << std::right << " "
       << value_string(d, true) << " -> " << value_string(d, false) << "  ("
       << pct_string(d) << ")\n";
  }
  if (!any) os << "  (none)\n";
}

}  // namespace rstp::obs
