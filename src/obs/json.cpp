#include "rstp/obs/json.h"

#include <cctype>
#include <charconv>
#include <cstdint>
#include <sstream>

namespace rstp::obs {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != input_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    std::ostringstream os;
    os << "JSON parse error at byte " << pos_ << ": " << message;
    throw JsonParseError(os.str());
  }

  void skip_ws() {
    while (pos_ < input_.size() &&
           (input_[pos_] == ' ' || input_[pos_] == '\t' || input_[pos_] == '\n' ||
            input_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() {
    if (pos_ >= input_.size()) fail("unexpected end of input");
    return input_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string{"expected '"} + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (input_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::String;
        v.text = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("invalid literal");
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("invalid literal");
        JsonValue v;
        v.kind = JsonValue::Kind::Bool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("invalid literal");
        return JsonValue{};
      }
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= input_.size()) fail("unterminated string");
      const char c = input_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= input_.size()) fail("unterminated escape");
      const char e = input_[pos_++];
      switch (e) {
        case '"':
        case '\\':
        case '/':
          out.push_back(e);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          const auto hex4 = [&]() -> std::uint32_t {
            if (pos_ + 4 > input_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            const auto [ptr, ec] =
                std::from_chars(input_.data() + pos_, input_.data() + pos_ + 4, code, 16);
            if (ec != std::errc{} || ptr != input_.data() + pos_ + 4) fail("bad \\u escape");
            pos_ += 4;
            return code;
          };
          std::uint32_t code = hex4();
          // UTF-16 escapes: D800-DBFF/DC00-DFFF must come as a pair and
          // combine into one supplementary code point. Emitting a raw
          // surrogate as a 3-byte sequence would be invalid UTF-8.
          if (code >= 0xDC00 && code <= 0xDFFF) fail("lone low surrogate in \\u escape");
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 2 > input_.size() || input_[pos_] != '\\' || input_[pos_ + 1] != 'u') {
              fail("high surrogate must be followed by a \\u low surrogate");
            }
            pos_ += 2;
            const std::uint32_t low = hex4();
            if (low < 0xDC00 || low > 0xDFFF) {
              fail("high surrogate must be followed by a low surrogate");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          // The sinks only emit ASCII; decode the code point as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else if (code < 0x10000) {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xF0 | (code >> 18)));
            out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < input_.size() && input_[pos_] == '-') ++pos_;
    const auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < input_.size() && std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
        ++pos_;
        ++n;
      }
      return n;
    };
    if (digits() == 0) fail("expected a number");
    if (pos_ < input_.size() && input_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("expected digits after decimal point");
    }
    if (pos_ < input_.size() && (input_[pos_] == 'e' || input_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < input_.size() && (input_[pos_] == '+' || input_[pos_] == '-')) ++pos_;
      if (digits() == 0) fail("expected digits in exponent");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.text = std::string{input_.substr(start, pos_ - start)};
    return v;
  }

  std::string_view input_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [name, value] : members) {
    if (name == key) return &value;
  }
  return nullptr;
}

double JsonValue::to_double() const {
  if (kind != Kind::Number) throw JsonParseError("value is not a number");
  double out = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw JsonParseError("unparseable number lexeme '" + text + "'");
  }
  return out;
}

std::int64_t JsonValue::to_i64() const {
  if (kind != Kind::Number) throw JsonParseError("value is not a number");
  std::int64_t out = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw JsonParseError("number '" + text + "' is not a 64-bit integer");
  }
  return out;
}

std::uint64_t JsonValue::to_u64() const {
  if (kind != Kind::Number) throw JsonParseError("value is not a number");
  std::uint64_t out = 0;
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    throw JsonParseError("number '" + text + "' is not an unsigned 64-bit integer");
  }
  return out;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->to_double() : fallback;
}

std::uint64_t JsonValue::u64_or(std::string_view key, std::uint64_t fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->to_u64() : fallback;
}

std::int64_t JsonValue::i64_or(std::string_view key, std::int64_t fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->is_number() ? v->to_i64() : fallback;
}

bool JsonValue::bool_or(std::string_view key, bool fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::Bool ? v->boolean : fallback;
}

std::string JsonValue::string_or(std::string_view key, std::string fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->kind == Kind::String ? v->text : std::move(fallback);
}

JsonValue parse_json(std::string_view input) { return Parser{input}.parse_document(); }

std::string json_number(double value) {
  char buf[64];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
  RSTP_CHECK(ec == std::errc{}, "double formatting cannot fail on a 64-byte buffer");
  return std::string(buf, ptr);
}

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace rstp::obs
