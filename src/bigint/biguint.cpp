#include "rstp/bigint/biguint.h"

#include <algorithm>
#include <bit>
#include <cctype>
#include <cmath>
#include <ostream>

#include "rstp/common/check.h"

namespace rstp::bigint {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

constexpr std::size_t kLimbBits = 64;

}  // namespace

BigUint::BigUint(u64 value) {
  if (value != 0) {
    limbs_.push_back(value);
  }
}

BigUint BigUint::from_decimal(std::string_view text) {
  RSTP_CHECK(!text.empty(), "empty decimal string");
  BigUint result;
  for (char c : text) {
    RSTP_CHECK(std::isdigit(static_cast<unsigned char>(c)), "non-digit in decimal string");
    result.mul_u64(10);
    result.add_u64(static_cast<u64>(c - '0'));
  }
  return result;
}

BigUint BigUint::pow2(std::size_t exponent) {
  BigUint result{1};
  result <<= exponent;
  return result;
}

void BigUint::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) {
    limbs_.pop_back();
  }
}

std::size_t BigUint::bit_length() const {
  if (limbs_.empty()) return 0;
  return (limbs_.size() - 1) * kLimbBits +
         (kLimbBits - static_cast<std::size_t>(std::countl_zero(limbs_.back())));
}

bool BigUint::bit(std::size_t i) const {
  const std::size_t limb = i / kLimbBits;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % kLimbBits)) & 1ULL;
}

u64 BigUint::to_u64() const {
  RSTP_CHECK(fits_u64(), "BigUint does not fit in uint64_t");
  return limbs_.empty() ? 0 : limbs_[0];
}

double BigUint::to_double() const {
  double result = 0.0;
  for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it) {
    result = result * 0x1.0p64 + static_cast<double>(*it);
  }
  return result;
}

double BigUint::log2() const {
  RSTP_CHECK(!is_zero(), "log2 of zero");
  // Take the top <=128 significant bits as a double in [1, 2), add bit count.
  const std::size_t bits = bit_length();
  if (bits <= 64) {
    return std::log2(static_cast<double>(limbs_[0]));
  }
  // Compose the top two limbs into a double mantissa.
  const u64 hi = limbs_.back();
  const u64 lo = limbs_[limbs_.size() - 2];
  const double top = static_cast<double>(hi) * 0x1.0p64 + static_cast<double>(lo);
  const double exponent = static_cast<double>((limbs_.size() - 2) * kLimbBits);
  return std::log2(top) + exponent;
}

std::string BigUint::to_decimal() const {
  if (is_zero()) return "0";
  std::string digits;
  BigUint scratch = *this;
  while (!scratch.is_zero()) {
    u64 remainder = 0;
    scratch = scratch.div_u64(10, remainder);
    digits.push_back(static_cast<char>('0' + remainder));
  }
  std::reverse(digits.begin(), digits.end());
  return digits;
}

BigUint& BigUint::operator+=(const BigUint& rhs) {
  // Single-limb fast path: the codec's small-k values live here, and the
  // general path's resize/push_back would touch the allocator per operation.
  if (limbs_.size() <= 1 && rhs.limbs_.size() <= 1) {
    const u64 a = limbs_.empty() ? 0 : limbs_[0];
    const u64 b = rhs.limbs_.empty() ? 0 : rhs.limbs_[0];
    const u128 sum = static_cast<u128>(a) + b;
    const u64 lo = static_cast<u64>(sum);
    const u64 hi = static_cast<u64>(sum >> kLimbBits);
    if (hi != 0) {
      limbs_.assign({lo, hi});
    } else if (lo != 0) {
      limbs_.assign(1, lo);
    } else {
      limbs_.clear();
    }
    return *this;
  }
  const std::size_t n = std::max(limbs_.size(), rhs.limbs_.size());
  limbs_.reserve(n + 1);  // one allocation even if the final carry spills
  limbs_.resize(n, 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const u64 b = i < rhs.limbs_.size() ? rhs.limbs_[i] : 0;
    const u128 sum = static_cast<u128>(limbs_[i]) + b + carry;
    limbs_[i] = static_cast<u64>(sum);
    carry = static_cast<u64>(sum >> kLimbBits);
  }
  if (carry != 0) limbs_.push_back(carry);
  return *this;
}

BigUint& BigUint::operator-=(const BigUint& rhs) {
  RSTP_CHECK(*this >= rhs, "BigUint subtraction underflow");
  if (limbs_.size() <= 1) {  // rhs.size() <= 1 follows from *this >= rhs
    const u64 a = limbs_.empty() ? 0 : limbs_[0];
    const u64 b = rhs.limbs_.empty() ? 0 : rhs.limbs_[0];
    const u64 diff = a - b;
    if (diff != 0) {
      limbs_.assign(1, diff);
    } else {
      limbs_.clear();
    }
    return *this;
  }
  u64 borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    const u64 b = i < rhs.limbs_.size() ? rhs.limbs_[i] : 0;
    const u128 lhs = static_cast<u128>(limbs_[i]);
    const u128 sub = static_cast<u128>(b) + borrow;
    if (lhs >= sub) {
      limbs_[i] = static_cast<u64>(lhs - sub);
      borrow = 0;
    } else {
      limbs_[i] = static_cast<u64>((static_cast<u128>(1) << kLimbBits) + lhs - sub);
      borrow = 1;
    }
  }
  RSTP_CHECK_EQ(borrow, u64{0});
  normalize();
  return *this;
}

BigUint operator*(const BigUint& a, const BigUint& b) {
  if (a.is_zero() || b.is_zero()) return BigUint{};
  BigUint result;
  result.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      const u128 cur = static_cast<u128>(a.limbs_[i]) * b.limbs_[j] + result.limbs_[i + j] + carry;
      result.limbs_[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    result.limbs_[i + b.limbs_.size()] += carry;
  }
  result.normalize();
  return result;
}

BigUint& BigUint::operator*=(const BigUint& rhs) {
  *this = *this * rhs;
  return *this;
}

BigUint& BigUint::operator<<=(std::size_t bits) {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / kLimbBits;
  const std::size_t bit_shift = bits % kLimbBits;
  limbs_.insert(limbs_.begin(), limb_shift, 0);
  if (bit_shift != 0) {
    u64 carry = 0;
    for (std::size_t i = limb_shift; i < limbs_.size(); ++i) {
      const u64 cur = limbs_[i];
      limbs_[i] = (cur << bit_shift) | carry;
      carry = cur >> (kLimbBits - bit_shift);
    }
    if (carry != 0) limbs_.push_back(carry);
  }
  return *this;
}

BigUint& BigUint::operator>>=(std::size_t bits) {
  if (is_zero() || bits == 0) return *this;
  const std::size_t limb_shift = bits / kLimbBits;
  const std::size_t bit_shift = bits % kLimbBits;
  if (limb_shift >= limbs_.size()) {
    limbs_.clear();
    return *this;
  }
  limbs_.erase(limbs_.begin(), limbs_.begin() + static_cast<std::ptrdiff_t>(limb_shift));
  if (bit_shift != 0) {
    for (std::size_t i = 0; i < limbs_.size(); ++i) {
      limbs_[i] >>= bit_shift;
      if (i + 1 < limbs_.size()) {
        limbs_[i] |= limbs_[i + 1] << (kLimbBits - bit_shift);
      }
    }
  }
  normalize();
  return *this;
}

BigUint BigUint::div_u64(u64 divisor, u64& remainder) const {
  RSTP_CHECK(divisor != 0, "division by zero");
  BigUint quotient;
  quotient.limbs_.assign(limbs_.size(), 0);
  u128 rem = 0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    const u128 cur = (rem << kLimbBits) | limbs_[i];
    quotient.limbs_[i] = static_cast<u64>(cur / divisor);
    rem = cur % divisor;
  }
  quotient.normalize();
  remainder = static_cast<u64>(rem);
  return quotient;
}

BigUint& BigUint::mul_u64(u64 factor) {
  if (factor == 0) {
    limbs_.clear();
    return *this;
  }
  u64 carry = 0;
  for (auto& limb : limbs_) {
    const u128 cur = static_cast<u128>(limb) * factor + carry;
    limb = static_cast<u64>(cur);
    carry = static_cast<u64>(cur >> kLimbBits);
  }
  if (carry != 0) limbs_.push_back(carry);
  return *this;
}

BigUint& BigUint::add_u64(u64 addend) {
  if (limbs_.size() <= 1) {
    const u128 sum = static_cast<u128>(limbs_.empty() ? 0 : limbs_[0]) + addend;
    const u64 lo = static_cast<u64>(sum);
    const u64 hi = static_cast<u64>(sum >> kLimbBits);
    if (hi != 0) {
      limbs_.assign({lo, hi});
    } else if (lo != 0) {
      limbs_.assign(1, lo);
    } else {
      limbs_.clear();
    }
    return *this;
  }
  u64 carry = addend;
  for (auto& limb : limbs_) {
    if (carry == 0) break;
    const u128 cur = static_cast<u128>(limb) + carry;
    limb = static_cast<u64>(cur);
    carry = static_cast<u64>(cur >> kLimbBits);
  }
  if (carry != 0) limbs_.push_back(carry);
  return *this;
}

BigUint::DivModResult BigUint::divmod(const BigUint& numerator, const BigUint& denominator) {
  RSTP_CHECK(!denominator.is_zero(), "division by zero");
  if (numerator < denominator) {
    return {BigUint{}, numerator};
  }
  if (denominator.limbs_.size() == 1) {
    u64 rem = 0;
    BigUint q = numerator.div_u64(denominator.limbs_[0], rem);
    return {std::move(q), BigUint{rem}};
  }
  // Shift-and-subtract long division over bits. The numbers in this library
  // are at most a few thousand bits, so the O(n^2/64) cost is negligible.
  BigUint quotient;
  BigUint remainder;
  const std::size_t total_bits = numerator.bit_length();
  quotient.limbs_.assign((total_bits + kLimbBits - 1) / kLimbBits, 0);
  for (std::size_t i = total_bits; i-- > 0;) {
    remainder <<= 1;
    if (numerator.bit(i)) {
      remainder.add_u64(1);
    }
    if (remainder >= denominator) {
      remainder -= denominator;
      quotient.limbs_[i / kLimbBits] |= (1ULL << (i % kLimbBits));
    }
  }
  quotient.normalize();
  return {std::move(quotient), std::move(remainder)};
}

std::strong_ordering operator<=>(const BigUint& a, const BigUint& b) {
  if (a.limbs_.size() == 1 && b.limbs_.size() == 1) {  // dominant codec case
    return a.limbs_[0] <=> b.limbs_[0];
  }
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() <=> b.limbs_.size();
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) {
      return a.limbs_[i] <=> b.limbs_[i];
    }
  }
  return std::strong_ordering::equal;
}

std::ostream& operator<<(std::ostream& os, const BigUint& v) { return os << v.to_decimal(); }

}  // namespace rstp::bigint
