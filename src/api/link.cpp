#include "rstp/api/link.h"

#include "rstp/common/check.h"
#include "rstp/core/bounds.h"
#include "rstp/core/verify.h"

namespace rstp::api {

namespace {

protocols::ProtocolKind to_kind(LinkProtocol p, const core::TimingParams& params,
                                std::uint32_t k) {
  switch (p) {
    case LinkProtocol::Auto:
      return Link::recommend(params, k);
    case LinkProtocol::Alpha:
      return protocols::ProtocolKind::Alpha;
    case LinkProtocol::Beta:
      return protocols::ProtocolKind::Beta;
    case LinkProtocol::Gamma:
      return protocols::ProtocolKind::Gamma;
    case LinkProtocol::AltBit:
      return protocols::ProtocolKind::AltBit;
  }
  RSTP_UNREACHABLE("unknown link protocol");
}

}  // namespace

Link::Link(LinkOptions options)
    : options_(std::move(options)),
      resolved_(to_kind(options_.protocol, options_.params, options_.k)) {
  options_.params.validate();
  RSTP_CHECK_GE(options_.k, 2u, "alphabet must have at least two symbols");
}

protocols::ProtocolKind Link::recommend(const core::TimingParams& params, std::uint32_t k) {
  const core::BoundsReport bounds = core::compute_bounds(params, k);
  return bounds.beta_upper <= bounds.gamma_upper ? protocols::ProtocolKind::Beta
                                                 : protocols::ProtocolKind::Gamma;
}

TransferResult Link::transfer(std::span<const std::uint8_t> payload) const {
  protocols::ProtocolConfig cfg;
  cfg.params = options_.params;
  cfg.k = options_.k;
  cfg.input = bytes_to_bits(payload);

  const core::ProtocolRun run = core::run_protocol(resolved_, cfg, options_.environment,
                                                   /*record_trace=*/options_.verify,
                                                   options_.max_events);

  TransferResult result;
  result.stats.protocol_used = resolved_;
  result.stats.payload_bytes = payload.size();
  result.stats.payload_bits = cfg.input.size();
  result.stats.last_send = run.result.last_transmitter_send;
  result.stats.completion = run.result.end_time;
  result.stats.data_packets = run.result.transmitter_sends;
  result.stats.ack_packets = run.result.receiver_sends;
  result.stats.events = run.result.event_count;
  if (!cfg.input.empty() && result.stats.last_send.has_value()) {
    result.stats.ticks_per_bit =
        static_cast<double>((*result.stats.last_send - Time::zero()).ticks()) /
        static_cast<double>(cfg.input.size());
  }

  bool verified_ok = true;
  if (options_.verify) {
    const core::VerifyResult verdict =
        core::verify_trace(run.result.trace, options_.params, cfg.input);
    result.stats.verified = verdict.ok();
    verified_ok = verdict.ok();
  }

  if (run.output_correct && run.result.quiescent) {
    result.received = bits_to_bytes(run.result.output);
  }
  result.ok = run.output_correct && run.result.quiescent && verified_ok;
  return result;
}

std::vector<ioa::Bit> bytes_to_bits(std::span<const std::uint8_t> bytes) {
  std::vector<ioa::Bit> bits;
  bits.reserve(bytes.size() * 8);
  for (const std::uint8_t byte : bytes) {
    for (int bit = 7; bit >= 0; --bit) {
      bits.push_back(static_cast<ioa::Bit>((byte >> bit) & 1u));
    }
  }
  return bits;
}

std::vector<std::uint8_t> bits_to_bytes(std::span<const ioa::Bit> bits) {
  RSTP_CHECK_EQ(bits.size() % 8, std::size_t{0}, "bit count must be a byte multiple");
  std::vector<std::uint8_t> bytes(bits.size() / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    RSTP_CHECK(bits[i] <= 1, "bits must be 0/1");
    bytes[i / 8] = static_cast<std::uint8_t>((bytes[i / 8] << 1) | bits[i]);
  }
  return bytes;
}

}  // namespace rstp::api
